// Package ultra models the NYU Ultracomputer (Section 1.2.3): n blocking
// processors connected to n memory modules through an omega network whose
// switches combine FETCH-AND-ADD requests to the same address. Combining
// removes the hot-spot serial bottleneck at the memory module, at the cost
// of adders and decombine state in every switch — "one memory reference
// may involve as many as log2 n additions, and implies substantial
// hardware complexity".
package ultra

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	// LogProcessors is log2 of the processor (and memory module) count.
	LogProcessors int
	// Combining enables switch-level FETCH-AND-ADD combining.
	Combining bool
	// BankService is the memory-module occupancy per request.
	BankService sim.Cycle
	// QueueCap bounds each switch queue.
	QueueCap int
	// ContextsPerCore gives each processor k hardware contexts.
	ContextsPerCore int
	// Shards > 1 runs the processors on the conservative parallel kernel
	// (sim.ParallelEngine), bit-identical to the sequential engine.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.LogProcessors == 0 {
		c.LogProcessors = 4
	}
	if c.BankService == 0 {
		c.BankService = 2
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	if c.ContextsPerCore == 0 {
		c.ContextsPerCore = 1
	}
	return c
}

// faaReq is a combinable FETCH-AND-ADD request payload. ref names the
// continuation alongside the live done closure so in-flight requests can
// be checkpointed and rebound on restore.
type faaReq struct {
	addr  uint32
	delta vn.Word
	done  func(vn.Word)
	ref   vn.DoneRef
}

// reply carries a completed operation's value back to its continuation.
type reply struct {
	val  vn.Word
	done func(vn.Word)
	ref  vn.DoneRef
}

// CombineKey combines only with requests for the same address.
func (f faaReq) CombineKey() (uint64, bool) { return uint64(f.addr), true }

// faaSplit is the decombine record for a merged FETCH-AND-ADD: the queued
// requester receives the fetched value v; the arrival receives v+delta. It
// is plain data (network.Splitter) so a pending decombine survives a
// checkpoint.
type faaSplit struct {
	delta     vn.Word
	first     func(vn.Word)
	second    func(vn.Word)
	firstRef  vn.DoneRef
	secondRef vn.DoneRef
}

// Split applies the Ultracomputer's serialization semantics to a reply.
func (s faaSplit) Split(r interface{}) (interface{}, interface{}) {
	v := r.(reply)
	return reply{val: v.val, done: s.first, ref: s.firstRef},
		reply{val: v.val + s.delta, done: s.second, ref: s.secondRef}
}

// Combine merges with the arriving request o. The queued request (f)
// continues forward carrying the summed delta; on the way back the switch
// splits the fetched value.
func (f faaReq) Combine(other network.Combinable) (network.Combinable, network.Splitter) {
	o := other.(faaReq)
	merged := faaReq{addr: f.addr, delta: f.delta + o.delta, done: f.done, ref: f.ref}
	return merged, faaSplit{
		delta: f.delta,
		first: f.done, firstRef: f.ref,
		second: o.done, secondRef: o.ref,
	}
}

// plainReq is a non-combinable memory operation.
type plainReq struct {
	req vn.MemRequest
}

// bank is one memory module on the omega network's memory side. The
// module is occupied for BankService cycles per request; the reply leaves
// when service completes, not at service start — the quiet stretches this
// opens in the network (request absorbed, reply not yet emitted) are what
// the engine's idle skipping exploits.
type bank struct {
	words     map[uint32]vn.Word
	queue     []*network.Packet
	busyUntil sim.Cycle
	// inService is the request being processed (present when pkt != nil);
	// its reply is emitted when service completes at busyUntil.
	inService pendingReply
	// pendingReplies holds completed replies refused by a full reverse
	// queue, retried every cycle.
	pendingReplies []pendingReply
	served         uint64
}

type pendingReply struct {
	pkt     *network.Packet
	payload interface{}
	due     sim.Cycle
}

// Machine is the assembled Ultracomputer model.
type Machine struct {
	cfg    Config
	n      int
	cores  []*vn.Core
	net    *network.Omega
	banks  []*bank
	engine sim.Driver
	// bankArr is the registered bank component, the wake target when the
	// network delivers a request into a bank queue.
	bankArr *bankArray
	// sendRetry holds injections refused by network backpressure.
	sendRetry *network.RetryQueue
}

// New builds the machine running prog on every core.
func New(cfg Config, prog *vn.Program) *Machine {
	cfg = cfg.withDefaults()
	n := 1 << cfg.LogProcessors
	m := &Machine{cfg: cfg, n: n}
	m.net = network.NewOmega(cfg.LogProcessors, cfg.QueueCap, cfg.Combining)
	m.banks = make([]*bank, n)
	for i := range m.banks {
		m.banks[i] = &bank{words: map[uint32]vn.Word{}}
	}
	m.net.SetDelivery(m.arriveAtBank)
	m.net.SetReplyDelivery(m.arriveAtCore)
	m.sendRetry = network.NewRetryQueue(m.net.Send)
	for p := 0; p < n; p++ {
		port := &cpuPort{m: m, cpu: p}
		c := vn.NewCore(prog, port, cfg.ContextsPerCore)
		c.SetSaveID(p)
		m.cores = append(m.cores, c)
	}
	m.bankArr = &bankArray{m: m}
	if cfg.Shards > 1 && n > 1 {
		par := sim.NewParallelEngine()
		m.engine = par
		par.Register(m.sendRetry)
		par.Register(m.net)
		par.Register(m.bankArr)
		vn.ShardCores(par, m.cores, cfg.Shards, vn.FabricLookahead(m.net))
	} else {
		eng := sim.NewEngine()
		m.engine = eng
		eng.Register(m.sendRetry)
		eng.Register(m.net)
		eng.Register(m.bankArr)
		for _, c := range m.cores {
			eng.Register(c)
		}
	}
	return m
}

// cpuPort adapts a core's memory interface to omega packets.
type cpuPort struct {
	m   *Machine
	cpu int
}

// Request injects the operation toward its memory module; address a lives
// on module a mod n.
func (p *cpuPort) Request(r vn.MemRequest) {
	dst := int(r.Addr) % p.m.n
	var payload interface{}
	if r.Op == vn.MemFetchAdd {
		payload = faaReq{addr: r.Addr, delta: r.Value, done: r.Done, ref: r.Ref}
	} else {
		payload = plainReq{req: r}
	}
	pkt := p.m.net.AcquirePacket()
	pkt.Src, pkt.Dst, pkt.Payload = p.cpu, dst, payload
	p.m.sendRetry.Send(pkt)
}

// arriveAtBank queues a request at its memory module and wakes the bank
// component at the exact cycle it can act on the arrival.
func (m *Machine) arriveAtBank(p *network.Packet) {
	m.banks[p.Dst].queue = append(m.banks[p.Dst].queue, p)
	if t := m.bankArr.NextEvent(m.engine.Now()); t != sim.Never {
		m.engine.Wake(m.bankArr, t)
	}
}

// arriveAtCore completes a memory operation at the issuing processor and
// recycles the reply packet.
func (m *Machine) arriveAtCore(p *network.Packet) {
	r := p.Payload.(reply)
	m.net.ReleasePacket(p)
	if r.done != nil {
		r.done(r.val)
	}
}

// stepBank emits replies whose service completed, retries refused replies,
// and begins servicing the next queued request once the module is free.
func (m *Machine) stepBank(b *bank, now sim.Cycle) {
	if b.inService.pkt != nil && now >= b.inService.due {
		pr := b.inService
		b.inService = pendingReply{}
		if !m.net.Reply(pr.pkt, pr.payload) {
			b.pendingReplies = append(b.pendingReplies, pr)
		}
	}
	if len(b.pendingReplies) > 0 {
		rest := b.pendingReplies[:0]
		for _, pr := range b.pendingReplies {
			if !m.net.Reply(pr.pkt, pr.payload) {
				rest = append(rest, pr)
			}
		}
		b.pendingReplies = rest
	}
	if now < b.busyUntil || len(b.queue) == 0 || b.inService.pkt != nil {
		return
	}
	pkt := b.queue[0]
	copy(b.queue, b.queue[1:])
	b.queue = b.queue[:len(b.queue)-1]
	b.busyUntil = now + m.cfg.BankService
	b.served++
	var payload interface{}
	switch req := pkt.Payload.(type) {
	case faaReq:
		old := b.words[req.addr]
		b.words[req.addr] = old + req.delta
		payload = reply{val: old, done: req.done, ref: req.ref}
	case plainReq:
		r := req.req
		var v vn.Word
		switch r.Op {
		case vn.MemRead:
			v = b.words[r.Addr]
		case vn.MemWrite:
			b.words[r.Addr] = r.Value
		case vn.MemTestSet:
			v = b.words[r.Addr]
			b.words[r.Addr] = 1
		case vn.MemFetchAdd:
			v = b.words[r.Addr]
			b.words[r.Addr] = v + r.Value
		}
		payload = reply{val: v, done: r.Done, ref: r.Ref}
	default:
		panic(fmt.Sprintf("ultra: unknown bank payload %T", pkt.Payload))
	}
	b.inService = pendingReply{pkt: pkt, payload: payload, due: b.busyUntil}
}

// bankArray steps every memory module in index order as one engine
// component, reporting the earliest cycle any module can act.
type bankArray struct{ m *Machine }

func (a *bankArray) Step(now sim.Cycle) {
	for _, b := range a.m.banks {
		a.m.stepBank(b, now)
	}
}

func (a *bankArray) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	for _, b := range a.m.banks {
		if len(b.pendingReplies) > 0 {
			return now
		}
		if b.inService.pkt != nil {
			t := b.inService.due
			if t < now {
				t = now
			}
			if t < next {
				next = t
			}
		}
		if len(b.queue) > 0 {
			t := b.busyUntil
			if t < now {
				t = now
			}
			if t < next {
				next = t
			}
		}
	}
	return next
}

// Halted reports whether every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// busy reports outstanding traffic anywhere in the memory system.
func (m *Machine) busy() bool {
	if m.net.Pending() > 0 || m.sendRetry.Len() > 0 {
		return true
	}
	for _, b := range m.banks {
		if len(b.queue) > 0 || b.inService.pkt != nil || len(b.pendingReplies) > 0 {
			return true
		}
	}
	return false
}

// Run drives the shared engine until every core halts and traffic drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	elapsed, ok := m.engine.Run(func() bool {
		return m.Halted() && !m.busy()
	}, limit)
	if !ok {
		return elapsed, fmt.Errorf("ultra: did not halt within %d cycles", limit)
	}
	return elapsed, nil
}

// Core returns processor p.
func (m *Machine) Core(p int) *vn.Core { return m.cores[p] }

// NumProcessors returns n.
func (m *Machine) NumProcessors() int { return m.n }

// Poke writes a global address directly.
func (m *Machine) Poke(addr uint32, v vn.Word) { m.banks[int(addr)%m.n].words[addr] = v }

// Peek reads a global address directly.
func (m *Machine) Peek(addr uint32) vn.Word { return m.banks[int(addr)%m.n].words[addr] }

// BankServed returns how many requests memory module b processed — the
// hot-spot serialization count combining is meant to reduce.
func (m *Machine) BankServed(b int) uint64 { return m.banks[b].served }

// Network exposes the omega network for statistics.
func (m *Machine) Network() *network.Omega { return m.net }

// Engine exposes the simulation engine (scheduling counters).
func (m *Machine) Engine() sim.Driver { return m.engine }

// WorkerSteps reports per-worker shard-step counts (nil when sequential).
func (m *Machine) WorkerSteps() []uint64 {
	if par, ok := m.engine.(*sim.ParallelEngine); ok {
		return par.WorkerSteps()
	}
	return nil
}
