package ultra

import (
	"testing"

	"repro/internal/vn"
)

// hotspot: every processor FETCH-AND-ADDs the same cell once and records
// the fetched ticket at a private address.
const hotspot = `
        li  r1, 0        ; hot cell (module 0)
        li  r2, 1
        faa r3, r1, r2
        st  r3, r4, 0    ; r4 = private recording address
        halt
`

func build(t *testing.T, cfg Config, src string) *Machine {
	t.Helper()
	prog, err := vn.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, prog)
}

func setupHotspot(t *testing.T, combining bool, logP int) *Machine {
	t.Helper()
	m := build(t, Config{LogProcessors: logP, Combining: combining}, hotspot)
	n := m.NumProcessors()
	for p := 0; p < n; p++ {
		// record at address 1000+p*n+p%n... any private address on module
		// (1000+p) mod n; use 1000 + p so they spread
		m.Core(p).Context(0).SetReg(4, vn.Word(1000+p))
	}
	return m
}

func checkPermutation(t *testing.T, m *Machine) {
	t.Helper()
	n := m.NumProcessors()
	if got := m.Peek(0); got != vn.Word(n) {
		t.Fatalf("hot cell = %d, want %d", got, n)
	}
	seen := map[vn.Word]bool{}
	for p := 0; p < n; p++ {
		v := m.Peek(uint32(1000 + p))
		if v < 0 || v >= vn.Word(n) || seen[v] {
			t.Fatalf("fetched tickets not a permutation: processor %d got %d", p, v)
		}
		seen[v] = true
	}
}

func TestHotspotCorrectWithoutCombining(t *testing.T) {
	m := setupHotspot(t, false, 4)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, m)
}

func TestHotspotCorrectWithCombining(t *testing.T) {
	m := setupHotspot(t, true, 4)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, m)
	if m.Network().CombineOps.Value() == 0 {
		t.Fatal("hot-spot burst should combine in the switches")
	}
}

func TestCombiningRelievesHotSpotSerialization(t *testing.T) {
	// Without combining, the hot module serves one request per processor;
	// with combining it serves far fewer, and the burst completes sooner.
	plain := setupHotspot(t, false, 5)
	plainCycles, err := plain.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	comb := setupHotspot(t, true, 5)
	combCycles, err := comb.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(plain.NumProcessors())
	if plain.BankServed(0) < n {
		t.Fatalf("without combining the hot bank must serve >= %d, served %d", n, plain.BankServed(0))
	}
	if comb.BankServed(0) >= plain.BankServed(0) {
		t.Fatalf("combining must cut hot-bank traffic: %d vs %d",
			comb.BankServed(0), plain.BankServed(0))
	}
	if combCycles >= plainCycles {
		t.Fatalf("combining should finish the burst faster: %d vs %d cycles", combCycles, plainCycles)
	}
}

func TestCombiningCostsSwitchAdditions(t *testing.T) {
	// The flip side the paper stresses: combining performs additions in
	// the network — up to n-1 of them for an n-way burst.
	m := setupHotspot(t, true, 4)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	ops := m.Network().CombineOps.Value()
	n := uint64(m.NumProcessors())
	if ops == 0 || ops > n-1 {
		t.Fatalf("combine ops = %d, want in [1, %d]", ops, n-1)
	}
	if m.Network().DecombineTable.Max() == 0 {
		t.Fatal("decombine state never held — switches did no bookkeeping?")
	}
}

func TestUniformTrafficUnaffectedByCombining(t *testing.T) {
	// Reads to distinct addresses never combine.
	prog := `
        ; r1 = private address
        ld  r2, r1, 0
        st  r2, r1, 64
        halt
`
	m := build(t, Config{LogProcessors: 3, Combining: true}, prog)
	for p := 0; p < 8; p++ {
		m.Core(p).Context(0).SetReg(1, vn.Word(p*8))
		m.Poke(uint32(p*8), vn.Word(100+p))
	}
	if _, err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if got := m.Peek(uint32(p*8 + 64)); got != vn.Word(100+p) {
			t.Fatalf("processor %d copied %d", p, got)
		}
	}
	if m.Network().CombineOps.Value() != 0 {
		t.Fatal("distinct addresses must not combine")
	}
}

func TestParallelQueueAllocation(t *testing.T) {
	// The Ultracomputer's motivating idiom: FETCH-AND-ADD as a parallel
	// queue-slot allocator. Every processor claims 4 slots; slots must be
	// disjoint and cover exactly [0, 4n).
	prog := `
        li  r1, 0        ; shared tail pointer
        li  r2, 4
        faa r3, r1, r2   ; claim 4 slots
        ; write our id into each claimed slot (slot array at 2000)
        li  r6, 4
        li  r7, 2000
        add r7, r7, r3
fill:   beq r6, r0, done
        st  r8, r7, 0
        addi r7, r7, 1
        addi r6, r6, -1
        j   fill
done:   halt
`
	m := build(t, Config{LogProcessors: 3, Combining: true}, prog)
	n := m.NumProcessors()
	for p := 0; p < n; p++ {
		m.Core(p).Context(0).SetReg(8, vn.Word(p+1))
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(0); got != vn.Word(4*n) {
		t.Fatalf("tail = %d, want %d", got, 4*n)
	}
	counts := map[vn.Word]int{}
	for s := 0; s < 4*n; s++ {
		v := m.Peek(uint32(2000 + s))
		if v == 0 {
			t.Fatalf("slot %d never written", s)
		}
		counts[v]++
	}
	for p := 1; p <= n; p++ {
		if counts[vn.Word(p)] != 4 {
			t.Fatalf("processor %d wrote %d slots, want 4", p, counts[vn.Word(p)])
		}
	}
}
