package ultra

import (
	"reflect"
	"testing"

	"repro/internal/vn"
)

// TestShardedBitIdentical pins the parallel kernel to the sequential one on
// the 16-processor hot-spot burst, with and without combining: snapshots
// (hot-cell value, bank serialization, network statistics, core budgets)
// must match byte for byte at every shard count.
func TestShardedBitIdentical(t *testing.T) {
	for _, combining := range []bool{false, true} {
		run := func(shards int) ultraSnapshot {
			m := build(t, Config{LogProcessors: 4, Combining: combining, Shards: shards}, hotspot)
			for p := 0; p < m.NumProcessors(); p++ {
				m.Core(p).Context(0).SetReg(4, vn.Word(1000+p))
			}
			cycles, err := m.Run(2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if shards > 1 && m.WorkerSteps() == nil {
				t.Fatalf("shards=%d: expected parallel engine worker counters", shards)
			}
			return snapshotUltra(m, uint64(cycles))
		}
		want := run(1)
		for _, s := range []int{2, 3, 4, 8} {
			if got := run(s); !reflect.DeepEqual(got, want) {
				t.Errorf("combining=%v shards=%d diverged from sequential:\n got %+v\nwant %+v",
					combining, s, got, want)
			}
		}
	}
}
