package ultra

import (
	"testing"

	"repro/internal/simtest"
	"repro/internal/vn"
)

type ultraSnapshot struct {
	Cycles      uint64 `json:"cycles"`
	HotCell     int64  `json:"hot_cell"`
	BankServed0 uint64 `json:"bank_served_0"`
	CombineOps  uint64 `json:"combine_ops"`
	NetDeliv    uint64 `json:"net_delivered"`
	NetRefused  uint64 `json:"net_refused"`
	CoreBusy    uint64 `json:"core_busy"`
	CoreIdle    uint64 `json:"core_idle"`
	CoreMemWait uint64 `json:"core_mem_wait"`
	CoreRetired uint64 `json:"core_retired"`
}

func snapshotUltra(m *Machine, cycles uint64) ultraSnapshot {
	s := ultraSnapshot{
		Cycles:      cycles,
		HotCell:     int64(m.Peek(0)),
		BankServed0: m.BankServed(0),
		CombineOps:  m.Network().CombineOps.Value(),
		NetDeliv:    m.Network().Stats().Delivered.Value(),
		NetRefused:  m.Network().Stats().Refused.Value(),
	}
	for p := 0; p < m.NumProcessors(); p++ {
		st := m.Core(p).Stats()
		s.CoreBusy += st.Busy.Value()
		s.CoreIdle += st.Idle.Value()
		s.CoreMemWait += st.MemWait.Value()
		s.CoreRetired += st.Retired.Value()
	}
	return s
}

// TestGoldenHotspotPlain pins the 32-processor hot-spot burst without
// combining: maximal omega-network backpressure, send-retry, and hot-bank
// serialization.
func TestGoldenHotspotPlain(t *testing.T) {
	m := setupHotspot(t, false, 5)
	cycles, err := m.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_hotspot_plain.json", snapshotUltra(m, uint64(cycles)))
}

// TestGoldenHotspotCombining pins the same burst with switch combining:
// decombine bookkeeping and reply-path refusals engage.
func TestGoldenHotspotCombining(t *testing.T) {
	m := setupHotspot(t, true, 5)
	cycles, err := m.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_hotspot_combining.json", snapshotUltra(m, uint64(cycles)))
}

// TestGoldenQueueAllocation pins the FETCH-AND-ADD parallel queue-slot
// allocation idiom with combining on: mixed FAA and plain traffic.
func TestGoldenQueueAllocation(t *testing.T) {
	prog, err := vn.Assemble(`
        li  r1, 0
        li  r2, 4
        faa r3, r1, r2
        li  r6, 4
        li  r7, 2000
        add r7, r7, r3
fill:   beq r6, r0, done
        st  r8, r7, 0
        addi r7, r7, 1
        addi r6, r6, -1
        j   fill
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{LogProcessors: 3, Combining: true}, prog)
	for p := 0; p < m.NumProcessors(); p++ {
		m.Core(p).Context(0).SetReg(8, vn.Word(p+1))
	}
	cycles, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simtest.Check(t, "testdata/golden_queue_alloc.json", snapshotUltra(m, uint64(cycles)))
}
