package ultra

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Checkpoint serialization. Packets in the omega network (and parked in
// banks and decombine records) carry ultra-specific payloads; payloadCodec
// round-trips them, rebinding continuation closures through vn.Resolver.

// Payload kind tags.
const (
	plFaaReq uint8 = iota + 1
	plPlainReq
	plReply
	plFaaSplit
)

type payloadCodec struct {
	resolve vn.DoneResolver
}

func (c payloadCodec) Save(e *sim.Enc, v interface{}) {
	switch p := v.(type) {
	case faaReq:
		e.U8(plFaaReq)
		e.U32(p.addr)
		e.I64(p.delta)
		vn.SaveDoneRef(e, p.ref)
	case plainReq:
		e.U8(plPlainReq)
		vn.SaveMemRequest(e, p.req)
	case reply:
		e.U8(plReply)
		e.I64(p.val)
		vn.SaveDoneRef(e, p.ref)
	case faaSplit:
		e.U8(plFaaSplit)
		e.I64(p.delta)
		vn.SaveDoneRef(e, p.firstRef)
		vn.SaveDoneRef(e, p.secondRef)
	default:
		panic(fmt.Sprintf("ultra: unserializable payload %T", v))
	}
}

func (c payloadCodec) Load(d *sim.Dec) interface{} {
	switch k := d.U8(); k {
	case plFaaReq:
		p := faaReq{addr: d.U32(), delta: d.I64(), ref: vn.LoadDoneRef(d)}
		p.done = vn.MustResolve(d, c.resolve, p.ref)
		return p
	case plPlainReq:
		return plainReq{req: vn.LoadMemRequest(d, c.resolve)}
	case plReply:
		r := reply{val: d.I64(), ref: vn.LoadDoneRef(d)}
		r.done = vn.MustResolve(d, c.resolve, r.ref)
		return r
	case plFaaSplit:
		s := faaSplit{
			delta:     d.I64(),
			firstRef:  vn.LoadDoneRef(d),
			secondRef: vn.LoadDoneRef(d),
		}
		s.first = vn.MustResolve(d, c.resolve, s.firstRef)
		s.second = vn.MustResolve(d, c.resolve, s.secondRef)
		return s
	default:
		if d.Err() == nil {
			d.Failf("ultra: unknown payload kind %d", k)
		}
		return nil
	}
}

func savePendingReply(e *sim.Enc, pr pendingReply, pc payloadCodec) {
	network.SavePacket(e, pr.pkt, pc)
	pc.Save(e, pr.payload)
	e.Cycle(pr.due)
}

func loadPendingReply(d *sim.Dec, pc payloadCodec) pendingReply {
	return pendingReply{
		pkt:     network.LoadPacket(d, pc),
		payload: pc.Load(d),
		due:     d.Cycle(),
	}
}

func (b *bank) save(e *sim.Enc, pc payloadCodec) {
	sim.SaveU32Map(e, b.words, func(e *sim.Enc, w vn.Word) { e.I64(w) })
	e.Cycle(b.busyUntil)
	e.U64(b.served)
	e.Len(len(b.queue))
	for _, p := range b.queue {
		network.SavePacket(e, p, pc)
	}
	e.Bool(b.inService.pkt != nil)
	if b.inService.pkt != nil {
		savePendingReply(e, b.inService, pc)
	}
	e.Len(len(b.pendingReplies))
	for _, pr := range b.pendingReplies {
		savePendingReply(e, pr, pc)
	}
}

func (b *bank) load(d *sim.Dec, pc payloadCodec) error {
	sim.LoadU32Map(d, b.words, func(d *sim.Dec) vn.Word { return d.I64() })
	b.busyUntil = d.Cycle()
	b.served = d.U64()
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	b.queue = b.queue[:0]
	for i := 0; i < n; i++ {
		b.queue = append(b.queue, network.LoadPacket(d, pc))
	}
	b.inService = pendingReply{}
	if d.Bool() {
		b.inService = loadPendingReply(d, pc)
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	b.pendingReplies = b.pendingReplies[:0]
	for i := 0; i < n; i++ {
		b.pendingReplies = append(b.pendingReplies, loadPendingReply(d, pc))
	}
	return d.Err()
}

// SaveState appends the whole machine's dynamic state (sim.Stateful).
func (m *Machine) SaveState(e *sim.Enc) {
	e.Tag("ultra", 1)
	m.engine.(sim.Stateful).SaveState(e)
	pc := payloadCodec{}
	m.sendRetry.SaveTo(e, pc)
	m.net.SaveTo(e, pc)
	e.Len(len(m.banks))
	for _, b := range m.banks {
		b.save(e, pc)
	}
	e.Len(len(m.cores))
	for _, c := range m.cores {
		c.SaveState(e)
	}
}

// LoadState restores the machine (sim.Stateful).
func (m *Machine) LoadState(d *sim.Dec) error {
	if err := d.Tag("ultra", 1); err != nil {
		return err
	}
	if err := m.engine.(sim.Stateful).LoadState(d); err != nil {
		return err
	}
	pc := payloadCodec{resolve: vn.Resolver(m.cores)}
	if err := m.sendRetry.LoadFrom(d, pc); err != nil {
		return err
	}
	if err := m.net.LoadFrom(d, pc); err != nil {
		return err
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.banks) {
		d.Failf("checkpoint has %d banks, machine has %d", n, len(m.banks))
		return d.Err()
	}
	for _, b := range m.banks {
		if err := b.load(d, pc); err != nil {
			return err
		}
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.cores) {
		d.Failf("checkpoint has %d cores, machine has %d", n, len(m.cores))
		return d.Err()
	}
	for _, c := range m.cores {
		if err := c.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

var _ sim.Stateful = (*Machine)(nil)
