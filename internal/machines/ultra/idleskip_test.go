package ultra

import (
	"testing"

	"repro/internal/vn"
	"repro/internal/workload"
)

// TestCombiningQuietStretchesAreSkipped pins the idle accounting fix: with
// combining, a burst collapses to one merged request, and while the memory
// module services it the network is empty and every processor is blocked —
// the engine must jump those cycles, not tick through them. (Before the
// module held replies until service completion there was nothing to skip:
// replies were emitted at service start and always overlapped the busy
// window.)
func TestCombiningQuietStretchesAreSkipped(t *testing.T) {
	prog, err := vn.Assemble(workload.HotspotASM)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{LogProcessors: 6, Combining: true}, prog)
	for p := 0; p < m.NumProcessors(); p++ {
		m.Core(p).Context(0).SetReg(4, vn.Word(1000+p))
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c := m.Engine().Counters(); c.CyclesSkipped == 0 {
		t.Fatalf("combining hotspot burst skipped no cycles: %+v", c)
	}
}

// TestPacketPoolRecycles pins the omega packet pool: after a full burst,
// retired requests and consumed replies sit in the free list, so a second
// identical burst acquires from the pool instead of allocating.
func TestPacketPoolRecycles(t *testing.T) {
	m := setupHotspot(t, true, 3)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	o := m.Network()
	p := o.AcquirePacket()
	if p.Hops != 0 || p.Payload != nil {
		t.Fatalf("recycled packet not reset: %+v", p)
	}
	o.ReleasePacket(p)
	if q := o.AcquirePacket(); q != p {
		t.Fatal("released packet was not recycled")
	}
}
