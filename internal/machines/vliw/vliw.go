// Package vliw models the horizontally microprogrammed machines of Section
// 1.2.4 (ELI-512, the Polycyclic processor, the AP-120B): a compiler packs
// many operations into each wide instruction and plans memory references in
// advance. The machine issues one bundle per cycle, in order, in lockstep —
// which is exactly its weakness: any memory reference that takes longer
// than the schedule assumed stalls the entire machine, and there is no way
// to switch to other work. E12 measures effective operations per cycle as
// dynamic memory behaviour departs from the compiler's static assumptions.
package vliw

import (
	"repro/internal/sim"
)

// Load is one memory reference scheduled inside a bundle. The compiler
// placed its first consumer Slack bundles later, assuming the reference
// completes within that window.
type Load struct {
	// Slack is the scheduled distance (in bundles) to the first use.
	Slack int
}

// Bundle is one wide instruction: Ops parallel ALU operations plus any
// number of scheduled memory references.
type Bundle struct {
	Ops   int
	Loads []Load
}

// Config sets the dynamic memory behaviour the static schedule meets.
type Config struct {
	// HitLatency is the reference time the compiler scheduled for.
	HitLatency sim.Cycle
	// MissLatency is the time a reference actually takes when it misses.
	MissLatency sim.Cycle
	// MissRate is the probability a reference misses.
	MissRate float64
	// Seed drives the reproducible miss pattern.
	Seed uint64
}

// Result summarizes one run.
type Result struct {
	Cycles      sim.Cycle
	TotalOps    uint64
	StallCycles sim.Cycle
	Misses      uint64
	Loads       uint64
}

// OpsPerCycle is the effective issue rate, the figure of merit that
// collapses when stalls dominate.
func (r Result) OpsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalOps) / float64(r.Cycles)
}

// Run executes the static schedule against the dynamic memory model.
// Bundles issue in order, one per cycle; before a bundle issues, every
// load whose scheduled consumer is this bundle (or earlier) must have
// completed — otherwise the whole machine stalls until it has.
func Run(schedule []Bundle, cfg Config) Result {
	if cfg.HitLatency < 1 {
		cfg.HitLatency = 1
	}
	if cfg.MissLatency < cfg.HitLatency {
		cfg.MissLatency = cfg.HitLatency
	}
	rng := sim.NewRNG(cfg.Seed)
	var res Result
	now := sim.Cycle(0)
	// outstanding[i] = completion time of loads whose consumer is bundle i
	outstanding := map[int][]sim.Cycle{}
	for i, b := range schedule {
		// wait for every load due at or before this bundle
		for j := 0; j <= i; j++ {
			for _, ready := range outstanding[j] {
				if ready > now {
					res.StallCycles += ready - now
					now = ready
				}
			}
			delete(outstanding, j)
		}
		// issue
		res.TotalOps += uint64(b.Ops)
		for _, ld := range b.Loads {
			res.Loads++
			lat := cfg.HitLatency
			if rng.Float64() < cfg.MissRate {
				lat = cfg.MissLatency
				res.Misses++
			}
			consumer := i + ld.Slack
			outstanding[consumer] = append(outstanding[consumer], now+lat)
		}
		now++
	}
	// Loads still outstanding here have their scheduled consumers beyond
	// the end of the schedule; nothing waits for them.
	res.Cycles = now
	return res
}

// SyntheticSchedule builds a regular schedule: n bundles of opsPerBundle
// operations, a load every loadEvery bundles, each scheduled with the
// given slack — a stand-in for the compiler's trace-scheduled inner loop.
func SyntheticSchedule(n, opsPerBundle, loadEvery, slack int) []Bundle {
	sched := make([]Bundle, n)
	for i := range sched {
		sched[i].Ops = opsPerBundle
		if loadEvery > 0 && i%loadEvery == 0 {
			sched[i].Loads = []Load{{Slack: slack}}
		}
	}
	return sched
}
