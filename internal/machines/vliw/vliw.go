// Package vliw models the horizontally microprogrammed machines of Section
// 1.2.4 (ELI-512, the Polycyclic processor, the AP-120B): a compiler packs
// many operations into each wide instruction and plans memory references in
// advance. The machine issues one bundle per cycle, in order, in lockstep —
// which is exactly its weakness: any memory reference that takes longer
// than the schedule assumed stalls the entire machine, and there is no way
// to switch to other work. E12 measures effective operations per cycle as
// dynamic memory behaviour departs from the compiler's static assumptions.
package vliw

import (
	"repro/internal/sim"
)

// Load is one memory reference scheduled inside a bundle. The compiler
// placed its first consumer Slack bundles later, assuming the reference
// completes within that window.
type Load struct {
	// Slack is the scheduled distance (in bundles) to the first use.
	Slack int
}

// Bundle is one wide instruction: Ops parallel ALU operations plus any
// number of scheduled memory references.
type Bundle struct {
	Ops   int
	Loads []Load
}

// Config sets the dynamic memory behaviour the static schedule meets.
type Config struct {
	// HitLatency is the reference time the compiler scheduled for.
	HitLatency sim.Cycle
	// MissLatency is the time a reference actually takes when it misses.
	MissLatency sim.Cycle
	// MissRate is the probability a reference misses.
	MissRate float64
	// Seed drives the reproducible miss pattern.
	Seed uint64
}

// Result summarizes one run.
type Result struct {
	Cycles      sim.Cycle
	TotalOps    uint64
	StallCycles sim.Cycle
	Misses      uint64
	Loads       uint64
	// Engine holds the scheduling counters of the run's internal engine,
	// so benchmarks can report VLIW scheduler behaviour like every other
	// machine's instead of all-zero placeholders.
	Engine sim.Counters
}

// OpsPerCycle is the effective issue rate, the figure of merit that
// collapses when stalls dominate.
func (r Result) OpsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalOps) / float64(r.Cycles)
}

// machine is the lockstep issue unit as a sim.Engine component: one bundle
// per stepped cycle, with stalls expressed as NextEvent jumps rather than
// burned cycles.
type machine struct {
	schedule []Bundle
	cfg      Config
	rng      *sim.RNG
	res      *Result
	next     int // next bundle to issue
	cleaned  int // consumer indexes retired so far
	// outstanding[i] = completion times of loads whose consumer is bundle i
	outstanding map[int][]sim.Cycle
	stallUntil  sim.Cycle
}

// Step retires loads due at the next bundle, then either stalls the whole
// machine (there is no other work to switch to) or issues the bundle.
func (m *machine) Step(now sim.Cycle) {
	if m.next >= len(m.schedule) || now < m.stallUntil {
		return
	}
	// wait for every load whose scheduled consumer is this bundle or earlier
	maxReady := sim.Cycle(0)
	for j := m.cleaned; j <= m.next; j++ {
		for _, ready := range m.outstanding[j] {
			if ready > maxReady {
				maxReady = ready
			}
		}
		delete(m.outstanding, j)
	}
	m.cleaned = m.next + 1
	if maxReady > now {
		m.res.StallCycles += maxReady - now
		m.stallUntil = maxReady
		return
	}
	b := m.schedule[m.next]
	m.res.TotalOps += uint64(b.Ops)
	for _, ld := range b.Loads {
		m.res.Loads++
		lat := m.cfg.HitLatency
		if m.rng.Float64() < m.cfg.MissRate {
			lat = m.cfg.MissLatency
			m.res.Misses++
		}
		consumer := m.next + ld.Slack
		if consumer <= m.next {
			// overdue the moment it issues: the very next bundle waits on it
			consumer = m.next + 1
		}
		m.outstanding[consumer] = append(m.outstanding[consumer], now+lat)
	}
	m.next++
}

// NextEvent pins every issue cycle and jumps stalls.
func (m *machine) NextEvent(now sim.Cycle) sim.Cycle {
	if m.next >= len(m.schedule) {
		return sim.Never
	}
	if now < m.stallUntil {
		return m.stallUntil
	}
	return now
}

// Machine is a resumable run of a static schedule against the dynamic
// memory model: issue bundles up to a cycle limit, checkpoint, and
// continue — the schedule itself stays host data, validated (not carried)
// by the checkpoint.
type Machine struct {
	m   *machine
	eng *sim.Engine
	res Result
}

// NewMachine prepares a run of the schedule under cfg.
func NewMachine(schedule []Bundle, cfg Config) *Machine {
	if cfg.HitLatency < 1 {
		cfg.HitLatency = 1
	}
	if cfg.MissLatency < cfg.HitLatency {
		cfg.MissLatency = cfg.HitLatency
	}
	v := &Machine{eng: sim.NewEngine()}
	v.m = &machine{
		schedule: schedule, cfg: cfg, rng: sim.NewRNG(cfg.Seed),
		res: &v.res, outstanding: map[int][]sim.Cycle{},
	}
	v.eng.Register(v.m)
	return v
}

// Run advances until the schedule completes or limit cycles elapse. It
// reports whether the schedule finished; a paused machine continues
// bit-identically on the next call (or after a checkpoint round trip).
func (v *Machine) Run(limit sim.Cycle) (Result, bool) {
	_, _ = v.eng.Run(func() bool { return v.m.next >= len(v.m.schedule) }, limit)
	if v.m.next < len(v.m.schedule) {
		return v.res, false
	}
	// Loads still outstanding here have their scheduled consumers beyond
	// the end of the schedule; nothing waits for them.
	v.res.Cycles = v.eng.Now()
	v.res.Engine = v.eng.Counters()
	return v.res, true
}

// Run executes the static schedule against the dynamic memory model.
// Bundles issue in order, one per cycle; before a bundle issues, every
// load whose scheduled consumer is this bundle (or earlier) must have
// completed — otherwise the whole machine stalls until it has.
func Run(schedule []Bundle, cfg Config) Result {
	v := NewMachine(schedule, cfg)
	// Every bundle costs at most one stall (bounded by MissLatency) plus its
	// issue cycle, so this limit can never bind.
	limit := sim.Cycle(len(schedule)+1)*(v.m.cfg.MissLatency+1) + 1
	res, _ := v.Run(limit)
	return res
}

// SyntheticSchedule builds a regular schedule: n bundles of opsPerBundle
// operations, a load every loadEvery bundles, each scheduled with the
// given slack — a stand-in for the compiler's trace-scheduled inner loop.
func SyntheticSchedule(n, opsPerBundle, loadEvery, slack int) []Bundle {
	sched := make([]Bundle, n)
	for i := range sched {
		sched[i].Ops = opsPerBundle
		if loadEvery > 0 && i%loadEvery == 0 {
			sched[i].Loads = []Load{{Slack: slack}}
		}
	}
	return sched
}
