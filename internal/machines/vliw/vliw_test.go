package vliw

import (
	"testing"
	"testing/quick"
)

func TestPerfectScheduleNoStalls(t *testing.T) {
	// When every load hits and the slack covers the hit latency, the
	// machine issues one bundle per cycle.
	sched := SyntheticSchedule(100, 4, 2, 3)
	res := Run(sched, Config{HitLatency: 3, MissLatency: 50, MissRate: 0, Seed: 1})
	if res.StallCycles != 0 {
		t.Fatalf("stalls = %d on a perfect schedule", res.StallCycles)
	}
	if res.Cycles != 100 {
		t.Fatalf("cycles = %d, want 100", res.Cycles)
	}
	if got := res.OpsPerCycle(); got != 4 {
		t.Fatalf("ops/cycle = %v, want 4", got)
	}
}

func TestEveryMissStallsEverything(t *testing.T) {
	// With a 100% miss rate the lockstep machine pays the full miss
	// penalty on every reference.
	sched := SyntheticSchedule(100, 4, 2, 3)
	res := Run(sched, Config{HitLatency: 3, MissLatency: 53, MissRate: 1, Seed: 1})
	if res.Misses != 50 {
		t.Fatalf("misses = %d, want 50", res.Misses)
	}
	if res.StallCycles == 0 {
		t.Fatal("misses must stall the machine")
	}
	// each miss costs ~50 extra cycles; effective rate collapses
	if got := res.OpsPerCycle(); got > 0.5 {
		t.Fatalf("ops/cycle = %v, should collapse under misses", got)
	}
}

func TestOpsRateFallsMonotonicallyWithMissRate(t *testing.T) {
	sched := SyntheticSchedule(1000, 4, 2, 3)
	prev := 1e9
	for _, mr := range []float64{0, 0.05, 0.2, 0.5, 1.0} {
		res := Run(sched, Config{HitLatency: 3, MissLatency: 40, MissRate: mr, Seed: 7})
		got := res.OpsPerCycle()
		if got > prev+1e-9 {
			t.Fatalf("ops/cycle rose from %v to %v at miss rate %v", prev, got, mr)
		}
		prev = got
	}
}

func TestSlackAbsorbsOnlyScheduledLatency(t *testing.T) {
	// Bigger slack tolerates longer latency — but only up to the slack the
	// compiler managed to find, and only for the *expected* case.
	mk := func(slack int) Result {
		sched := SyntheticSchedule(500, 4, 1, slack)
		return Run(sched, Config{HitLatency: 8, MissLatency: 8, MissRate: 0, Seed: 1})
	}
	tight := mk(2) // slack 2 < latency 8: stalls every bundle
	loose := mk(10)
	if tight.StallCycles == 0 {
		t.Fatal("insufficient slack must stall")
	}
	if loose.StallCycles != 0 {
		t.Fatalf("slack 10 should cover latency 8, stalled %d", loose.StallCycles)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	sched := SyntheticSchedule(200, 2, 3, 2)
	a := Run(sched, Config{HitLatency: 2, MissLatency: 30, MissRate: 0.3, Seed: 42})
	b := Run(sched, Config{HitLatency: 2, MissLatency: 30, MissRate: 0.3, Seed: 42})
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestTotalOpsConserved(t *testing.T) {
	if err := quick.Check(func(seed uint64, mrRaw uint8) bool {
		mr := float64(mrRaw) / 255
		sched := SyntheticSchedule(100, 3, 2, 2)
		res := Run(sched, Config{HitLatency: 2, MissLatency: 20, MissRate: mr, Seed: seed})
		// ops never lost, cycles at least the bundle count
		return res.TotalOps == 300 && res.Cycles >= 100 && res.Loads == 50
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
