package vliw

import (
	"testing"

	"repro/internal/simtest"
)

type vliwSnapshot struct {
	Cycles      uint64  `json:"cycles"`
	TotalOps    uint64  `json:"total_ops"`
	StallCycles uint64  `json:"stall_cycles"`
	Misses      uint64  `json:"misses"`
	Loads       uint64  `json:"loads"`
	OpsPerCycle float64 `json:"ops_per_cycle"`
}

func snapshotVLIW(r Result) vliwSnapshot {
	return vliwSnapshot{
		Cycles:      uint64(r.Cycles),
		TotalOps:    r.TotalOps,
		StallCycles: uint64(r.StallCycles),
		Misses:      r.Misses,
		Loads:       r.Loads,
		OpsPerCycle: r.OpsPerCycle(),
	}
}

// TestGoldenStallSweep pins the static schedule against three dynamic miss
// regimes. The RNG call sequence is part of the contract: any kernel change
// that reorders load evaluation shifts the miss pattern and breaks these.
func TestGoldenStallSweep(t *testing.T) {
	sched := SyntheticSchedule(2000, 8, 2, 4)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"hit_only", Config{HitLatency: 3, MissLatency: 40, MissRate: 0, Seed: 7}},
		{"miss_10pct", Config{HitLatency: 3, MissLatency: 40, MissRate: 0.10, Seed: 7}},
		{"miss_50pct_long", Config{HitLatency: 3, MissLatency: 200, MissRate: 0.50, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(sched, tc.cfg)
			simtest.Check(t, "testdata/golden_"+tc.name+".json", snapshotVLIW(res))
		})
	}
}
