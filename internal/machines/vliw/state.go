package vliw

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// scheduleHash fingerprints the static schedule (FNV-1a over every field)
// so a checkpoint refuses to resume against a different program without
// carrying the whole schedule in the stream.
func scheduleHash(schedule []Bundle) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(len(schedule)))
	for _, b := range schedule {
		mix(uint64(b.Ops))
		mix(uint64(len(b.Loads)))
		for _, ld := range b.Loads {
			mix(uint64(ld.Slack))
		}
	}
	return h
}

// SaveState serializes a (possibly mid-schedule) run (sim.Stateful).
func (v *Machine) SaveState(e *sim.Enc) {
	m := v.m
	e.Tag("vliwmach", 1)
	e.U64(scheduleHash(m.schedule))
	e.Cycle(m.cfg.HitLatency)
	e.Cycle(m.cfg.MissLatency)
	e.F64(m.cfg.MissRate)
	e.U64(m.cfg.Seed)
	v.eng.SaveState(e)
	m.rng.Save(e)
	e.Int(m.next)
	e.Int(m.cleaned)
	e.Cycle(m.stallUntil)
	keys := make([]int, 0, len(m.outstanding))
	for k := range m.outstanding {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.Len(len(keys))
	for _, k := range keys {
		e.Int(k)
		e.Len(len(m.outstanding[k]))
		for _, c := range m.outstanding[k] {
			e.Cycle(c)
		}
	}
	e.U64(v.res.TotalOps)
	e.Cycle(v.res.StallCycles)
	e.U64(v.res.Misses)
	e.U64(v.res.Loads)
}

// LoadState restores a run into a machine built over the same schedule and
// configuration (sim.Stateful).
func (v *Machine) LoadState(d *sim.Dec) error {
	m := v.m
	if err := d.Tag("vliwmach", 1); err != nil {
		return err
	}
	if got, want := d.U64(), scheduleHash(m.schedule); got != want {
		return fmt.Errorf("checkpoint: vliw: schedule hash %#x, machine has %#x", got, want)
	}
	if got := d.Cycle(); got != m.cfg.HitLatency {
		return fmt.Errorf("checkpoint: vliw: hit latency %d, machine has %d", got, m.cfg.HitLatency)
	}
	if got := d.Cycle(); got != m.cfg.MissLatency {
		return fmt.Errorf("checkpoint: vliw: miss latency %d, machine has %d", got, m.cfg.MissLatency)
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(m.cfg.MissRate) {
		return fmt.Errorf("checkpoint: vliw: miss rate %v, machine has %v", got, m.cfg.MissRate)
	}
	if got := d.U64(); got != m.cfg.Seed {
		return fmt.Errorf("checkpoint: vliw: seed %d, machine has %d", got, m.cfg.Seed)
	}
	if err := v.eng.LoadState(d); err != nil {
		return err
	}
	m.rng.Load(d)
	next := d.Int()
	cleaned := d.Int()
	stallUntil := d.Cycle()
	if next < 0 || next > len(m.schedule) {
		return fmt.Errorf("checkpoint: vliw: next bundle %d out of range", next)
	}
	if cleaned < 0 || cleaned > next+1 {
		return fmt.Errorf("checkpoint: vliw: cleaned %d inconsistent with next %d", cleaned, next)
	}
	outstanding := map[int][]sim.Cycle{}
	nKeys := d.Len(len(m.schedule) + 1)
	prev := -1
	for i := 0; i < nKeys; i++ {
		k := d.Int()
		if k <= prev || k < cleaned {
			return fmt.Errorf("checkpoint: vliw: outstanding consumer %d out of order or already retired", k)
		}
		prev = k
		nc := d.Len(1 << 20)
		cs := make([]sim.Cycle, nc)
		for j := range cs {
			cs[j] = d.Cycle()
		}
		if nc == 0 {
			return fmt.Errorf("checkpoint: vliw: consumer %d with no outstanding loads", k)
		}
		outstanding[k] = cs
	}
	totalOps := d.U64()
	stallCycles := d.Cycle()
	misses := d.U64()
	loads := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	m.next = next
	m.cleaned = cleaned
	m.stallUntil = stallUntil
	m.outstanding = outstanding
	v.res = Result{TotalOps: totalOps, StallCycles: stallCycles, Misses: misses, Loads: loads}
	return nil
}

var _ sim.Stateful = (*Machine)(nil)
