// Package connection models the Connection Machine proposal of Section
// 1.2.5: a SIMD array of very simple processors (a few registers and a
// 1-bit ALU), a single instruction sequencer, and a packet-routed
// hypercube joining groups of grid-connected cells. One instruction is
// broadcast at a time; a routing instruction runs until every message is
// delivered and the global flag rises, and only then does the next
// instruction begin.
//
// The paper's quantitative remark — that such a machine spends almost all
// (90%? 99%?) of its time communicating, making 1-bit ALU speed irrelevant
// — is what E10 measures, along with the grid-vs-hypercube routing gap.
//
// This machine has no Shards option: SIMD lockstep means every cell
// executes the same broadcast instruction against the shared router, so
// there is no independent per-component work to run concurrently — the
// whole array is one serial component on the sequential engine.
package connection

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
)

// Router is the communication fabric joining the processors.
type Router uint8

// Router choices.
const (
	RouterHypercube Router = iota
	RouterGrid
)

// Config sizes the machine.
type Config struct {
	// LogPEs is log2 of the processor count (the proposal: 20, a million
	// cells; experiments use smaller).
	LogPEs int
	// Router picks the fabric: the CM hypercube or an Illiac-IV-style
	// grid (requires LogPEs even for a square grid).
	Router Router
	// QueueCap bounds router buffers.
	QueueCap int
	// BitSerialWordBits scales compute-instruction cost: a w-bit
	// operation on a 1-bit ALU takes w cycles.
	BitSerialWordBits int
}

func (c Config) withDefaults() Config {
	if c.LogPEs == 0 {
		c.LogPEs = 8
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	if c.BitSerialWordBits == 0 {
		c.BitSerialWordBits = 16
	}
	return c
}

// Message is one routed datum between cells.
type Message struct {
	From, To int
	Value    int64
}

// Machine is the SIMD array plus sequencer.
type Machine struct {
	cfg Config
	n   int
	net network.Network

	// Mem is each cell's local storage (word-addressed, tiny — the
	// proposal gives each cell a few dozen bits).
	mem [][]int64

	// sequencer accounting
	ComputeCycles metrics.Counter
	RouteCycles   metrics.Counter
	Routed        metrics.Counter
	RouteSteps    *metrics.Histogram

	pendingDeliver []*network.Packet
	// retry holds injections refused by router backpressure.
	retry   *network.RetryQueue
	engine  *sim.Engine
	deliver func(to int, value int64) // per-Route delivery callback
}

// New builds the machine with memWords of local memory per cell.
func New(cfg Config, memWords int) *Machine {
	cfg = cfg.withDefaults()
	n := 1 << cfg.LogPEs
	m := &Machine{cfg: cfg, n: n}
	switch cfg.Router {
	case RouterHypercube:
		m.net = network.NewHypercube(cfg.LogPEs, cfg.QueueCap)
	case RouterGrid:
		side := 1 << (cfg.LogPEs / 2)
		if side*side != n {
			panic(fmt.Sprintf("connection: grid router needs a square PE count, got 2^%d", cfg.LogPEs))
		}
		m.net = network.NewMesh(side, side, true, cfg.QueueCap)
	}
	m.net.SetDelivery(func(p *network.Packet) {
		m.pendingDeliver = append(m.pendingDeliver, p)
	})
	m.mem = make([][]int64, n)
	for i := range m.mem {
		m.mem[i] = make([]int64, memWords)
	}
	m.RouteSteps = metrics.NewHistogram(4, 8, 16, 32, 64, 128, 256, 512, 1024)
	m.retry = network.NewRetryQueue(m.net.Send)
	// One engine tick is one router step; the links are bit-serial, so a
	// word-sized message occupies its link for a full word time and each
	// tick costs BitSerialWordBits sequencer cycles.
	m.engine = sim.NewEngine()
	m.engine.SetStride(sim.Cycle(cfg.BitSerialWordBits))
	m.engine.Register(&routePass{m: m})
	return m
}

// routePass is one router step as an engine component: reinject refused
// packets, move the fabric, deliver arrivals, and account sequencer time.
type routePass struct{ m *Machine }

func (r *routePass) Step(now sim.Cycle) {
	m := r.m
	m.retry.Drain()
	m.net.Step(now)
	m.RouteCycles.Add(uint64(m.cfg.BitSerialWordBits))
	for _, p := range m.pendingDeliver {
		m.deliver(p.Dst, p.Payload.(int64))
		m.Routed.Inc()
	}
	m.pendingDeliver = m.pendingDeliver[:0]
}

func (r *routePass) NextEvent(now sim.Cycle) sim.Cycle {
	if r.m.retry.Len() > 0 || r.m.net.Pending() > 0 {
		return now
	}
	return sim.Never
}

// NumPEs returns the cell count.
func (m *Machine) NumPEs() int { return m.n }

// Mem returns cell pe's local memory.
func (m *Machine) Mem(pe int) []int64 { return m.mem[pe] }

// Compute broadcasts one word-wide compute instruction: f runs on every
// cell (cells opt out by doing nothing), costing BitSerialWordBits cycles
// of sequencer time — the 1-bit-ALU tax.
func (m *Machine) Compute(f func(pe int, mem []int64)) {
	for pe := 0; pe < m.n; pe++ {
		f(pe, m.mem[pe])
	}
	w := uint64(m.cfg.BitSerialWordBits)
	m.ComputeCycles.Add(w)
	m.engine.Advance(sim.Cycle(w))
}

// Route broadcasts a routing instruction: every message is injected and
// the router steps until all are delivered (the global all-done flag).
// deliver is called once per arriving message. Route returns the number of
// router cycles consumed.
func (m *Machine) Route(msgs []Message, deliver func(to int, value int64)) sim.Cycle {
	// injection may itself take multiple cycles under backpressure
	start := m.engine.Now()
	m.deliver = deliver
	for _, msg := range msgs {
		m.retry.Send(&network.Packet{Src: msg.From, Dst: msg.To, Payload: msg.Value})
	}
	_, ok := m.engine.Run(func() bool {
		return m.retry.Len() == 0 && m.net.Pending() == 0
	}, 1_000_000*sim.Cycle(m.cfg.BitSerialWordBits))
	if !ok {
		panic("connection: routing did not converge")
	}
	m.deliver = nil
	steps := m.engine.Now() - start
	m.RouteSteps.Observe(uint64(steps))
	return steps
}

// CommFraction is the share of sequencer time spent routing — the number
// the paper guesses at ("90%?, 99%?").
func (m *Machine) CommFraction() float64 {
	total := m.ComputeCycles.Value() + m.RouteCycles.Value()
	if total == 0 {
		return 0
	}
	return float64(m.RouteCycles.Value()) / float64(total)
}

// Network exposes the router for statistics.
func (m *Machine) Network() network.Network { return m.net }
