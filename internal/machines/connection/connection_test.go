package connection

import (
	"testing"

	"repro/internal/sim"
)

// buildRing returns edges forming a ring over n nodes.
func ringEdges(n int) [][]int {
	edges := make([][]int, n)
	for i := 0; i < n; i++ {
		edges[i] = []int{(i + 1) % n, (i + n - 1) % n}
	}
	return edges
}

// labelPropagation runs min-label propagation over the given edges until
// stable: the connected-components workload of applied-AI graph programs
// the paper describes. mem[0] holds the label.
func labelPropagation(t *testing.T, m *Machine, edges [][]int, maxRounds int) int {
	t.Helper()
	n := m.NumPEs()
	for pe := 0; pe < n; pe++ {
		m.Mem(pe)[0] = int64(pe) // initial label = own id
	}
	for round := 0; round < maxRounds; round++ {
		var msgs []Message
		for pe := 0; pe < n; pe++ {
			for _, to := range edges[pe] {
				msgs = append(msgs, Message{From: pe, To: to, Value: m.Mem(pe)[0]})
			}
		}
		changedAny := false
		m.Route(msgs, func(to int, v int64) {
			if v < m.Mem(to)[1] {
				m.Mem(to)[1] = v // mem[1]: min incoming label this round
			}
		})
		m.Compute(func(pe int, mem []int64) {
			if mem[1] < mem[0] {
				mem[0] = mem[1]
				changedAny = true
			}
			mem[1] = int64(n) // reset for next round
		})
		if !changedAny {
			return round + 1
		}
	}
	t.Fatal("label propagation did not converge")
	return maxRounds
}

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m := New(cfg, 4)
	n := m.NumPEs()
	for pe := 0; pe < n; pe++ {
		m.Mem(pe)[1] = int64(n)
	}
	return m
}

func TestRoutingDeliversAll(t *testing.T) {
	m := newTestMachine(t, Config{LogPEs: 6})
	got := map[int]int64{}
	var msgs []Message
	for pe := 0; pe < m.NumPEs(); pe++ {
		msgs = append(msgs, Message{From: pe, To: (pe + 13) % m.NumPEs(), Value: int64(pe)})
	}
	m.Route(msgs, func(to int, v int64) { got[to] = v })
	if len(got) != m.NumPEs() {
		t.Fatalf("delivered to %d of %d", len(got), m.NumPEs())
	}
	if m.Routed.Value() != uint64(m.NumPEs()) {
		t.Fatalf("routed = %d", m.Routed.Value())
	}
}

func TestGlobalFlagSemantics(t *testing.T) {
	// Route must not return until the network is fully drained.
	m := newTestMachine(t, Config{LogPEs: 4})
	var msgs []Message
	for pe := 0; pe < 16; pe++ {
		msgs = append(msgs, Message{From: pe, To: 15 - pe, Value: 1})
	}
	m.Route(msgs, func(int, int64) {})
	if m.Network().Pending() != 0 {
		t.Fatal("route returned with packets still in flight")
	}
}

func TestCommunicationDominatesCompute(t *testing.T) {
	// The paper's claim: on graph-exploration workloads a processor "will
	// spend almost all (90%?, 99%?) of its time communicating". Use a
	// scattered random graph, the shape of the applied-AI programs the
	// proposal targets.
	m := newTestMachine(t, Config{LogPEs: 10})
	n := m.NumPEs()
	rng := sim.NewRNG(5)
	edges := make([][]int, n)
	for i := 0; i < n; i++ {
		// ring backbone keeps it connected; three scattered extra edges
		edges[i] = []int{(i + 1) % n, rng.Intn(n), rng.Intn(n), rng.Intn(n)}
	}
	labelPropagation(t, m, edges, 1000)
	if f := m.CommFraction(); f < 0.7 {
		t.Fatalf("communication fraction = %v, expected it to dominate", f)
	}
}

func TestHypercubeBeatsGridOnScatteredTraffic(t *testing.T) {
	// Random-distance traffic: the 2-D grid pays O(sqrt n) hops, the
	// hypercube O(log n).
	traffic := func(m *Machine) sim.Cycle {
		var msgs []Message
		n := m.NumPEs()
		rng := sim.NewRNG(99)
		for pe := 0; pe < n; pe++ {
			msgs = append(msgs, Message{From: pe, To: rng.Intn(n), Value: 1})
		}
		return m.Route(msgs, func(int, int64) {})
	}
	cube := newTestMachine(t, Config{LogPEs: 8, Router: RouterHypercube})
	grid := newTestMachine(t, Config{LogPEs: 8, Router: RouterGrid})
	ch := traffic(cube)
	gh := traffic(grid)
	if ch >= gh {
		t.Fatalf("hypercube (%d cycles) should beat grid (%d cycles) on scattered traffic", ch, gh)
	}
}

func TestLabelPropagationFindsComponents(t *testing.T) {
	// Two separate rings: labels converge to each ring's minimum id.
	m := newTestMachine(t, Config{LogPEs: 4})
	n := m.NumPEs()
	edges := make([][]int, n)
	half := n / 2
	for i := 0; i < half; i++ {
		edges[i] = []int{(i + 1) % half, (i + half - 1) % half}
	}
	for i := half; i < n; i++ {
		edges[i] = []int{half + (i-half+1)%half, half + (i-half+half-1)%half}
	}
	labelPropagation(t, m, edges, 1000)
	for pe := 0; pe < half; pe++ {
		if m.Mem(pe)[0] != 0 {
			t.Fatalf("pe %d label %d, want 0", pe, m.Mem(pe)[0])
		}
	}
	for pe := half; pe < n; pe++ {
		if m.Mem(pe)[0] != int64(half) {
			t.Fatalf("pe %d label %d, want %d", pe, m.Mem(pe)[0], half)
		}
	}
}

func TestBitSerialComputeCost(t *testing.T) {
	m := newTestMachine(t, Config{LogPEs: 4, BitSerialWordBits: 16})
	m.Compute(func(int, []int64) {})
	if m.ComputeCycles.Value() != 16 {
		t.Fatalf("16-bit op on 1-bit ALU must cost 16 cycles, got %d", m.ComputeCycles.Value())
	}
}
