package connection

import (
	"testing"

	"repro/internal/simtest"
)

type connSnapshot struct {
	ComputeCycles  uint64  `json:"compute_cycles"`
	RouteCycles    uint64  `json:"route_cycles"`
	Routed         uint64  `json:"routed"`
	CommFraction   float64 `json:"comm_fraction"`
	RouteStepsMean float64 `json:"route_steps_mean"`
	RouteStepsMax  uint64  `json:"route_steps_max"`
	LabelChecksum  int64   `json:"label_checksum"`
	Rounds         int     `json:"rounds"`
}

func snapshotConn(m *Machine, rounds int) connSnapshot {
	s := connSnapshot{
		ComputeCycles:  m.ComputeCycles.Value(),
		RouteCycles:    m.RouteCycles.Value(),
		Routed:         m.Routed.Value(),
		CommFraction:   m.CommFraction(),
		RouteStepsMean: m.RouteSteps.Mean(),
		RouteStepsMax:  m.RouteSteps.Max(),
		Rounds:         rounds,
	}
	for pe := 0; pe < m.NumPEs(); pe++ {
		s.LabelChecksum += m.Mem(pe)[0] * int64(pe+1)
	}
	return s
}

// TestGoldenLabelPropagation pins the ring-graph label-propagation workload
// on both router fabrics: the sequencer's compute/route cycle split is the
// paper's own figure of merit.
func TestGoldenLabelPropagation(t *testing.T) {
	t.Run("hypercube", func(t *testing.T) {
		m := newTestMachine(t, Config{LogPEs: 6, Router: RouterHypercube})
		rounds := labelPropagation(t, m, ringEdges(m.NumPEs()), 1000)
		simtest.Check(t, "testdata/golden_hypercube.json", snapshotConn(m, rounds))
	})
	t.Run("grid", func(t *testing.T) {
		m := newTestMachine(t, Config{LogPEs: 6, Router: RouterGrid})
		rounds := labelPropagation(t, m, ringEdges(m.NumPEs()), 1000)
		simtest.Check(t, "testdata/golden_grid.json", snapshotConn(m, rounds))
	})
}
