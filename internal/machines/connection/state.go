package connection

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
)

// Checkpoints are taken between broadcast instructions — the machine's one
// natural boundary: the sequencer issues a single instruction at a time
// and Route runs to convergence before returning, so outside an
// instruction the router is drained and no delivery callback is live. The
// SIMD program itself is host code and is not part of the state; resuming
// a checkpoint means re-running the host program from the matching
// instruction boundary against the restored array.

// wordCodec serializes the only payload type the array routes: one word.
type wordCodec struct{}

func (wordCodec) Save(e *sim.Enc, v interface{}) {
	w, ok := v.(int64)
	if !ok {
		panic(fmt.Sprintf("connection: unexpected payload %T", v))
	}
	e.I64(w)
}

func (wordCodec) Load(d *sim.Dec) interface{} { return d.I64() }

// SaveState serializes the array between broadcast instructions
// (sim.Stateful). It panics when called mid-Route: the delivery callback
// is host code and cannot be carried in a checkpoint.
func (m *Machine) SaveState(e *sim.Enc) {
	if m.deliver != nil {
		panic("connection: cannot checkpoint during a routing instruction")
	}
	if len(m.pendingDeliver) != 0 {
		panic("connection: undelivered packets outside a routing instruction")
	}
	e.Tag("connmach", 1)
	e.Int(m.cfg.LogPEs)
	e.U8(uint8(m.cfg.Router))
	e.Int(m.cfg.QueueCap)
	e.Int(m.cfg.BitSerialWordBits)
	e.Int(len(m.mem[0]))
	m.engine.SaveState(e)
	for pe := range m.mem {
		for _, w := range m.mem[pe] {
			e.I64(w)
		}
	}
	m.ComputeCycles.Save(e)
	m.RouteCycles.Save(e)
	m.Routed.Save(e)
	m.RouteSteps.Save(e)
	m.net.(network.Checkpointable).SaveTo(e, wordCodec{})
	m.retry.SaveTo(e, wordCodec{})
}

// LoadState restores the array (sim.Stateful).
func (m *Machine) LoadState(d *sim.Dec) error {
	if err := d.Tag("connmach", 1); err != nil {
		return err
	}
	shape := []struct {
		name string
		want int
	}{
		{"log-pes", m.cfg.LogPEs},
		{"router", int(m.cfg.Router)},
		{"queue-cap", m.cfg.QueueCap},
		{"word-bits", m.cfg.BitSerialWordBits},
		{"mem-words", len(m.mem[0])},
	}
	for _, s := range shape {
		if s.name == "router" {
			if got := int(d.U8()); got != s.want {
				return fmt.Errorf("checkpoint: connection: %s %d, machine has %d", s.name, got, s.want)
			}
			continue
		}
		if got := d.Int(); got != s.want {
			return fmt.Errorf("checkpoint: connection: %s %d, machine has %d", s.name, got, s.want)
		}
	}
	if err := m.engine.LoadState(d); err != nil {
		return err
	}
	for pe := range m.mem {
		for i := range m.mem[pe] {
			m.mem[pe][i] = d.I64()
		}
	}
	m.ComputeCycles.Load(d)
	m.RouteCycles.Load(d)
	m.Routed.Load(d)
	m.RouteSteps.Load(d)
	if err := m.net.(network.Checkpointable).LoadFrom(d, wordCodec{}); err != nil {
		return err
	}
	if err := m.retry.LoadFrom(d, wordCodec{}); err != nil {
		return err
	}
	m.pendingDeliver = m.pendingDeliver[:0]
	return d.Err()
}

var _ sim.Stateful = (*Machine)(nil)
