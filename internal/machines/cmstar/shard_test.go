package cmstar

import (
	"reflect"
	"testing"

	"repro/internal/vn"
)

func snapshotCmstar(m *Machine, cycles uint64) cmstarSnapshot {
	st := m.Stats()
	snap := cmstarSnapshot{
		Cycles:        cycles,
		LocalRefs:     st.LocalRefs.Value(),
		RemoteRefs:    st.RemoteRefs.Value(),
		RemoteLatMean: st.RemoteLatency.Mean(),
		RemoteLatMax:  st.RemoteLatency.Max(),
		MeanUtil:      m.MeanUtilization(),
	}
	for i := 0; i < m.NumCores(); i++ {
		cs := m.CoreAt(i).Stats()
		snap.CoreBusy += cs.Busy.Value()
		snap.CoreIdle += cs.Idle.Value()
		snap.CoreMemWait += cs.MemWait.Value()
		snap.CoreRetired += cs.Retired.Value()
	}
	return snap
}

// TestShardedBitIdentical pins the parallel kernel to the sequential one on
// the local/remote mix workload: cluster buses, the Kmap hop chain, and the
// serial request routing all stay serial while cores shard, and every
// statistic must match byte for byte at every shard count.
func TestShardedBitIdentical(t *testing.T) {
	run := func(shards int) cmstarSnapshot {
		prog, err := vn.Assemble(mixProgram)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Clusters: 4, CoresPerCluster: 2, ClusterWords: 1 << 12, Shards: shards}
		m := New(cfg, prog)
		words := uint32(1 << 12)
		for i := 0; i < m.NumCores(); i++ {
			cluster := i / cfg.CoresPerCluster
			ctx := m.CoreAt(i).Context(0)
			ctx.SetReg(1, vn.Word(uint32(cluster)*words+100+uint32(i)*16))
			far := cfg.Clusters - 1 - cluster
			ctx.SetReg(2, vn.Word(uint32(far)*words+500+uint32(i)*16))
			ctx.SetReg(5, 12)
		}
		cycles, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && m.WorkerSteps() == nil {
			t.Fatalf("shards=%d: expected parallel engine worker counters", shards)
		}
		return snapshotCmstar(m, uint64(cycles))
	}
	want := run(1)
	for _, s := range []int{2, 3, 4, 8} {
		if got := run(s); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d diverged from sequential:\n got %+v\nwant %+v", s, got, want)
		}
	}
}
