// Package cmstar models Cm* (Section 1.2.2): clusters of LSI-11-class
// processors, each cluster with its own memory and map bus, joined by
// Kmap communication controllers into a hierarchy. The Kmap itself could
// context-switch across outstanding remote references, but the processors
// could not: a non-local memory reference idles the issuing processor for
// the whole round trip. Greater inter-cluster distance therefore means
// longer reference times and lower processor utilization — the behaviour
// (Deminet's measurements) that, as the paper says, "demonstrated quite
// clearly the importance of Issue 1".
package cmstar

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	Clusters        int
	CoresPerCluster int
	// ClusterWords is the memory per cluster; global address a lives in
	// cluster a/ClusterWords.
	ClusterWords uint32
	// BusService is the cluster map-bus occupancy per request; BusLatency
	// the access time.
	BusService, BusLatency sim.Cycle
	// KmapService is the Kmap occupancy per remote request (charged at
	// the source); HopLatency is the per-cluster-hop transit time over
	// the intercluster links (clusters form a chain: distance |i-j|).
	KmapService, HopLatency sim.Cycle
	// Shards > 1 runs the processors on the conservative parallel kernel
	// (sim.ParallelEngine), bit-identical to the sequential engine. The
	// cluster buses, Kmap event pump, and all Request routing (including
	// the kmapBusy serialization and reference statistics) stay serial:
	// sharded cores defer the whole Request to the commit barrier.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 4
	}
	if c.CoresPerCluster == 0 {
		c.CoresPerCluster = 4
	}
	if c.ClusterWords == 0 {
		c.ClusterWords = 1 << 16
	}
	if c.BusService == 0 {
		c.BusService = 1
	}
	if c.BusLatency == 0 {
		c.BusLatency = 3
	}
	if c.KmapService == 0 {
		c.KmapService = 4
	}
	if c.HopLatency == 0 {
		c.HopLatency = 12
	}
	return c
}

// Stats aggregates machine-level reference counts.
type Stats struct {
	LocalRefs  metrics.Counter
	RemoteRefs metrics.Counter
	// RemoteLatency observes round-trip times of remote references.
	RemoteLatency *metrics.Histogram
}

// Machine is the assembled Cm* model.
type Machine struct {
	cfg    Config
	cores  []*vn.Core // flattened: cluster c core k = cores[c*CoresPerCluster+k]
	buses  []*vn.BankedMemory
	events *sim.EventQueue
	// pump is the registered event dispatcher, the wake target whenever a
	// Kmap transit event is scheduled.
	pump *eventPump
	// kmapBusy serializes each cluster's outgoing remote references.
	kmapBusy []sim.Cycle
	now      sim.Cycle
	engine   sim.Driver
	stats    Stats
}

// New builds the machine, loading prog into every core (blocking, one
// context: the LSI-11 could not micro-task).
func New(cfg Config, prog *vn.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:      cfg,
		events:   sim.NewEventQueue(),
		kmapBusy: make([]sim.Cycle, cfg.Clusters),
	}
	m.stats.RemoteLatency = metrics.NewHistogram(4, 8, 16, 32, 64, 128, 256, 512)
	for c := 0; c < cfg.Clusters; c++ {
		m.buses = append(m.buses, vn.NewBankedMemory(cfg.BusLatency, cfg.BusService))
		for k := 0; k < cfg.CoresPerCluster; k++ {
			port := &clusterPort{m: m, cluster: c}
			m.cores = append(m.cores, vn.NewCore(prog, port, 1))
		}
	}
	m.pump = &eventPump{m: m}
	if cfg.Shards > 1 && len(m.cores) > 1 {
		par := sim.NewParallelEngine()
		m.engine = par
		par.Register(m.pump)
		for _, b := range m.buses {
			par.Register(b)
		}
		vn.ShardCores(par, m.cores, cfg.Shards)
	} else {
		eng := sim.NewEngine()
		m.engine = eng
		eng.Register(m.pump)
		for _, b := range m.buses {
			eng.Register(b)
		}
		for _, c := range m.cores {
			eng.Register(c)
		}
	}
	return m
}

// eventPump dispatches due Kmap transit events and tracks machine time; it
// steps first so remote deliveries precede bus and core activity, exactly
// as the hand-rolled step order had it.
type eventPump struct{ m *Machine }

func (p *eventPump) Step(now sim.Cycle) {
	p.m.now = now
	p.m.events.RunUntil(now)
}

func (p *eventPump) NextEvent(now sim.Cycle) sim.Cycle {
	if t := p.m.events.Next(); t > now {
		return t
	}
	return now
}

// clusterPort is the memory interface seen by cores of one cluster.
type clusterPort struct {
	m       *Machine
	cluster int
}

// Request routes locally over the map bus or remotely through the Kmap.
func (p *clusterPort) Request(r vn.MemRequest) {
	m := p.m
	target := int(r.Addr / m.cfg.ClusterWords)
	if target >= m.cfg.Clusters {
		panic(fmt.Sprintf("cmstar: address %d beyond cluster space", r.Addr))
	}
	local := r.Addr % m.cfg.ClusterWords
	if target == p.cluster {
		m.stats.LocalRefs.Inc()
		r.Addr = local
		m.buses[target].Request(r)
		return
	}
	// Remote: source Kmap serializes, then the request transits |i-j|
	// hops, queues at the remote bus, and the reply transits back.
	m.stats.RemoteRefs.Inc()
	dist := target - p.cluster
	if dist < 0 {
		dist = -dist
	}
	transit := m.cfg.HopLatency * sim.Cycle(dist)
	// Issue time comes from the engine clock: the pump (which tracks m.now)
	// only steps when events are due, but requests issue mid-tick.
	start := m.engine.Now()
	if m.kmapBusy[p.cluster] > start {
		start = m.kmapBusy[p.cluster]
	}
	m.kmapBusy[p.cluster] = start + m.cfg.KmapService
	issued := m.engine.Now()
	orig := r.Done
	remote := r
	remote.Addr = local
	remote.Done = func(v vn.Word) {
		// reply transits back; deliver to the core after the return trip
		at := m.events.Now() + transit
		m.events.At(at, func() {
			m.stats.RemoteLatency.Observe(uint64(m.now - issued))
			orig(v)
		})
		m.engine.Wake(m.pump, at)
	}
	at := start + m.cfg.KmapService + transit
	m.events.At(at, func() {
		m.buses[target].Request(remote)
	})
	m.engine.Wake(m.pump, at)
}

// Halted reports whether every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// busy reports in-flight Kmap transits or bus traffic.
func (m *Machine) busy() bool {
	if m.events.Len() > 0 {
		return true
	}
	for _, b := range m.buses {
		if b.Pending() > 0 {
			return true
		}
	}
	return false
}

// Run drives the shared engine until all cores halt and traffic drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	elapsed, ok := m.engine.Run(func() bool {
		return m.Halted() && !m.busy()
	}, limit)
	if !ok {
		return elapsed, fmt.Errorf("cmstar: did not halt within %d cycles", limit)
	}
	return elapsed, nil
}

// Core returns the k-th core of cluster c.
func (m *Machine) Core(c, k int) *vn.Core { return m.cores[c*m.cfg.CoresPerCluster+k] }

// NumCores returns the total processor count.
func (m *Machine) NumCores() int { return len(m.cores) }

// CoreAt returns core i in flattened order.
func (m *Machine) CoreAt(i int) *vn.Core { return m.cores[i] }

// Poke writes a global address directly.
func (m *Machine) Poke(addr uint32, v vn.Word) {
	m.buses[addr/m.cfg.ClusterWords].Poke(addr%m.cfg.ClusterWords, v)
}

// Peek reads a global address directly.
func (m *Machine) Peek(addr uint32) vn.Word {
	return m.buses[addr/m.cfg.ClusterWords].Peek(addr % m.cfg.ClusterWords)
}

// Stats returns machine-level reference statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

// Engine exposes the simulation engine (scheduling counters).
func (m *Machine) Engine() sim.Driver { return m.engine }

// WorkerSteps reports per-worker shard-step counts (nil when sequential).
func (m *Machine) WorkerSteps() []uint64 {
	if par, ok := m.engine.(*sim.ParallelEngine); ok {
		return par.WorkerSteps()
	}
	return nil
}

// MeanUtilization averages processor utilization.
func (m *Machine) MeanUtilization() float64 {
	u := 0.0
	for _, c := range m.cores {
		u += c.Stats().Utilization()
	}
	return u / float64(len(m.cores))
}
