// Package cmstar models Cm* (Section 1.2.2): clusters of LSI-11-class
// processors, each cluster with its own memory and map bus, joined by
// Kmap communication controllers into a hierarchy. The Kmap itself could
// context-switch across outstanding remote references, but the processors
// could not: a non-local memory reference idles the issuing processor for
// the whole round trip. Greater inter-cluster distance therefore means
// longer reference times and lower processor utilization — the behaviour
// (Deminet's measurements) that, as the paper says, "demonstrated quite
// clearly the importance of Issue 1".
package cmstar

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	Clusters        int
	CoresPerCluster int
	// ClusterWords is the memory per cluster; global address a lives in
	// cluster a/ClusterWords.
	ClusterWords uint32
	// BusService is the cluster map-bus occupancy per request; BusLatency
	// the access time.
	BusService, BusLatency sim.Cycle
	// KmapService is the Kmap occupancy per remote request (charged at
	// the source); HopLatency is the per-cluster-hop transit time over
	// the intercluster links (clusters form a chain: distance |i-j|).
	KmapService, HopLatency sim.Cycle
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 4
	}
	if c.CoresPerCluster == 0 {
		c.CoresPerCluster = 4
	}
	if c.ClusterWords == 0 {
		c.ClusterWords = 1 << 16
	}
	if c.BusService == 0 {
		c.BusService = 1
	}
	if c.BusLatency == 0 {
		c.BusLatency = 3
	}
	if c.KmapService == 0 {
		c.KmapService = 4
	}
	if c.HopLatency == 0 {
		c.HopLatency = 12
	}
	return c
}

// Stats aggregates machine-level reference counts.
type Stats struct {
	LocalRefs  metrics.Counter
	RemoteRefs metrics.Counter
	// RemoteLatency observes round-trip times of remote references.
	RemoteLatency *metrics.Histogram
}

// Machine is the assembled Cm* model.
type Machine struct {
	cfg    Config
	cores  []*vn.Core // flattened: cluster c core k = cores[c*CoresPerCluster+k]
	buses  []*vn.BankedMemory
	events *sim.EventQueue
	// kmapBusy serializes each cluster's outgoing remote references.
	kmapBusy []sim.Cycle
	now      sim.Cycle
	stats    Stats
}

// New builds the machine, loading prog into every core (blocking, one
// context: the LSI-11 could not micro-task).
func New(cfg Config, prog *vn.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:      cfg,
		events:   sim.NewEventQueue(),
		kmapBusy: make([]sim.Cycle, cfg.Clusters),
	}
	m.stats.RemoteLatency = metrics.NewHistogram(4, 8, 16, 32, 64, 128, 256, 512)
	for c := 0; c < cfg.Clusters; c++ {
		m.buses = append(m.buses, vn.NewBankedMemory(cfg.BusLatency, cfg.BusService))
		for k := 0; k < cfg.CoresPerCluster; k++ {
			port := &clusterPort{m: m, cluster: c}
			m.cores = append(m.cores, vn.NewCore(prog, port, 1))
		}
	}
	return m
}

// clusterPort is the memory interface seen by cores of one cluster.
type clusterPort struct {
	m       *Machine
	cluster int
}

// Request routes locally over the map bus or remotely through the Kmap.
func (p *clusterPort) Request(r vn.MemRequest) {
	m := p.m
	target := int(r.Addr / m.cfg.ClusterWords)
	if target >= m.cfg.Clusters {
		panic(fmt.Sprintf("cmstar: address %d beyond cluster space", r.Addr))
	}
	local := r.Addr % m.cfg.ClusterWords
	if target == p.cluster {
		m.stats.LocalRefs.Inc()
		r.Addr = local
		m.buses[target].Request(r)
		return
	}
	// Remote: source Kmap serializes, then the request transits |i-j|
	// hops, queues at the remote bus, and the reply transits back.
	m.stats.RemoteRefs.Inc()
	dist := target - p.cluster
	if dist < 0 {
		dist = -dist
	}
	transit := m.cfg.HopLatency * sim.Cycle(dist)
	start := m.now
	if m.kmapBusy[p.cluster] > start {
		start = m.kmapBusy[p.cluster]
	}
	m.kmapBusy[p.cluster] = start + m.cfg.KmapService
	issued := m.now
	orig := r.Done
	remote := r
	remote.Addr = local
	remote.Done = func(v vn.Word) {
		// reply transits back; deliver to the core after the return trip
		m.events.At(m.events.Now()+transit, func() {
			m.stats.RemoteLatency.Observe(uint64(m.now - issued))
			orig(v)
		})
	}
	m.events.At(start+m.cfg.KmapService+transit, func() {
		m.buses[target].Request(remote)
	})
}

// Step advances the machine one cycle.
func (m *Machine) Step(now sim.Cycle) {
	m.now = now
	m.events.RunUntil(now)
	for _, b := range m.buses {
		b.Step(now)
	}
	for _, c := range m.cores {
		c.Step(now)
	}
}

// Halted reports whether every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Run steps until all cores halt and traffic drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	start := m.now
	for m.now-start < limit {
		busy := m.events.Len() > 0
		for _, b := range m.buses {
			if b.Pending() > 0 {
				busy = true
			}
		}
		if m.Halted() && !busy {
			return m.now - start, nil
		}
		m.Step(m.now)
		m.now++
	}
	return m.now - start, fmt.Errorf("cmstar: did not halt within %d cycles", limit)
}

// Core returns the k-th core of cluster c.
func (m *Machine) Core(c, k int) *vn.Core { return m.cores[c*m.cfg.CoresPerCluster+k] }

// NumCores returns the total processor count.
func (m *Machine) NumCores() int { return len(m.cores) }

// CoreAt returns core i in flattened order.
func (m *Machine) CoreAt(i int) *vn.Core { return m.cores[i] }

// Poke writes a global address directly.
func (m *Machine) Poke(addr uint32, v vn.Word) {
	m.buses[addr/m.cfg.ClusterWords].Poke(addr%m.cfg.ClusterWords, v)
}

// Peek reads a global address directly.
func (m *Machine) Peek(addr uint32) vn.Word {
	return m.buses[addr/m.cfg.ClusterWords].Peek(addr % m.cfg.ClusterWords)
}

// Stats returns machine-level reference statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

// MeanUtilization averages processor utilization.
func (m *Machine) MeanUtilization() float64 {
	u := 0.0
	for _, c := range m.cores {
		u += c.Stats().Utilization()
	}
	return u / float64(len(m.cores))
}
