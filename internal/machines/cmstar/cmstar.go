// Package cmstar models Cm* (Section 1.2.2): clusters of LSI-11-class
// processors, each cluster with its own memory and map bus, joined by
// Kmap communication controllers into a hierarchy. The Kmap itself could
// context-switch across outstanding remote references, but the processors
// could not: a non-local memory reference idles the issuing processor for
// the whole round trip. Greater inter-cluster distance therefore means
// longer reference times and lower processor utilization — the behaviour
// (Deminet's measurements) that, as the paper says, "demonstrated quite
// clearly the importance of Issue 1".
package cmstar

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vn"
)

// Config sizes the machine.
type Config struct {
	Clusters        int
	CoresPerCluster int
	// ClusterWords is the memory per cluster; global address a lives in
	// cluster a/ClusterWords.
	ClusterWords uint32
	// BusService is the cluster map-bus occupancy per request; BusLatency
	// the access time.
	BusService, BusLatency sim.Cycle
	// KmapService is the Kmap occupancy per remote request (charged at
	// the source); HopLatency is the per-cluster-hop transit time over
	// the intercluster links (clusters form a chain: distance |i-j|).
	KmapService, HopLatency sim.Cycle
	// Shards > 1 runs the processors on the conservative parallel kernel
	// (sim.ParallelEngine), bit-identical to the sequential engine. The
	// cluster buses, Kmap event pump, and all Request routing (including
	// the kmapBusy serialization and reference statistics) stay serial:
	// sharded cores defer the whole Request to the commit barrier.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 4
	}
	if c.CoresPerCluster == 0 {
		c.CoresPerCluster = 4
	}
	if c.ClusterWords == 0 {
		c.ClusterWords = 1 << 16
	}
	if c.BusService == 0 {
		c.BusService = 1
	}
	if c.BusLatency == 0 {
		c.BusLatency = 3
	}
	if c.KmapService == 0 {
		c.KmapService = 4
	}
	if c.HopLatency == 0 {
		c.HopLatency = 12
	}
	return c
}

// Stats aggregates machine-level reference counts.
type Stats struct {
	LocalRefs  metrics.Counter
	RemoteRefs metrics.Counter
	// RemoteLatency observes round-trip times of remote references.
	RemoteLatency *metrics.Histogram
}

// Machine is the assembled Cm* model.
type Machine struct {
	cfg   Config
	cores []*vn.Core // flattened: cluster c core k = cores[c*CoresPerCluster+k]
	buses []*vn.BankedMemory
	// kq holds pending Kmap transits as typed events (not closures), so
	// in-flight remote references serialize into checkpoints.
	kq kmapQueue
	// pump is the registered event dispatcher, the wake target whenever a
	// Kmap transit event is scheduled.
	pump *eventPump
	// kmapBusy serializes each cluster's outgoing remote references.
	kmapBusy []sim.Cycle
	now      sim.Cycle
	engine   sim.Driver
	stats    Stats

	// remoteOut tracks each remote reference between its forward transit
	// and its reply, keyed by the id its bus-side DoneRef carries.
	remoteOut map[uint64]*remoteRec
	remoteSeq uint64
}

// remoteRec is one outstanding remote reference.
type remoteRec struct {
	issued   sim.Cycle
	transit  sim.Cycle
	origRef  vn.DoneRef
	origDone func(vn.Word)
}

// kmapEvent is one scheduled Kmap transit: a forward request arriving at
// the remote cluster's bus, or a reply delivering to the issuing core.
type kmapEvent struct {
	at  sim.Cycle
	seq uint64

	isReply bool
	// forward transit
	target int
	req    vn.MemRequest
	// reply transit
	value    vn.Word
	issued   sim.Cycle
	origRef  vn.DoneRef
	origDone func(vn.Word)
}

// kmapQueue is a min-heap of transit events ordered by (at, seq) — the
// same total order sim.EventQueue dispatches in. Like sim.EventQueue, its
// clock advances to each dispatched event's time, and reply scheduling is
// measured against that clock.
type kmapQueue struct {
	h   []kmapEvent
	now sim.Cycle
	seq uint64
}

func (q *kmapQueue) Len() int { return len(q.h) }

// Next reports the earliest pending transit, or sim.Never when empty.
func (q *kmapQueue) Next() sim.Cycle {
	if len(q.h) == 0 {
		return sim.Never
	}
	return q.h[0].at
}

func (q *kmapQueue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// push schedules ev, assigning its dispatch sequence number.
func (q *kmapQueue) push(ev kmapEvent) {
	if ev.at < q.now {
		panic(fmt.Sprintf("cmstar: transit scheduled at %d, now is %d", ev.at, q.now))
	}
	q.seq++
	ev.seq = q.seq
	q.h = append(q.h, ev)
	for i := len(q.h) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

// pop removes the earliest transit, advancing the queue clock to it.
func (q *kmapQueue) pop() kmapEvent {
	ev := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = kmapEvent{}
	q.h = q.h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.h) && q.less(l, min) {
			min = l
		}
		if r < len(q.h) && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
	q.now = ev.at
	return ev
}

// New builds the machine, loading prog into every core (blocking, one
// context: the LSI-11 could not micro-task).
func New(cfg Config, prog *vn.Program) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:       cfg,
		kmapBusy:  make([]sim.Cycle, cfg.Clusters),
		remoteOut: map[uint64]*remoteRec{},
	}
	m.stats.RemoteLatency = metrics.NewHistogram(4, 8, 16, 32, 64, 128, 256, 512)
	for c := 0; c < cfg.Clusters; c++ {
		m.buses = append(m.buses, vn.NewBankedMemory(cfg.BusLatency, cfg.BusService))
		for k := 0; k < cfg.CoresPerCluster; k++ {
			port := &clusterPort{m: m, cluster: c}
			core := vn.NewCore(prog, port, 1)
			core.SetSaveID(c*cfg.CoresPerCluster + k)
			m.cores = append(m.cores, core)
		}
	}
	m.pump = &eventPump{m: m}
	if cfg.Shards > 1 && len(m.cores) > 1 {
		par := sim.NewParallelEngine()
		m.engine = par
		par.Register(m.pump)
		for _, b := range m.buses {
			par.Register(b)
		}
		vn.ShardCores(par, m.cores, cfg.Shards, vn.FabricLookahead(m.pump))
	} else {
		eng := sim.NewEngine()
		m.engine = eng
		eng.Register(m.pump)
		for _, b := range m.buses {
			eng.Register(b)
		}
		for _, c := range m.cores {
			eng.Register(c)
		}
	}
	return m
}

// eventPump dispatches due Kmap transit events and tracks machine time; it
// steps first so remote deliveries precede bus and core activity, exactly
// as the hand-rolled step order had it.
type eventPump struct{ m *Machine }

func (p *eventPump) Step(now sim.Cycle) {
	p.m.now = now
	for p.m.kq.Len() > 0 && p.m.kq.Next() <= now {
		p.m.dispatch(p.m.kq.pop())
	}
}

func (p *eventPump) NextEvent(now sim.Cycle) sim.Cycle {
	if t := p.m.kq.Next(); t > now {
		return t
	}
	return now
}

// dispatch runs one due transit.
func (m *Machine) dispatch(ev kmapEvent) {
	if ev.isReply {
		m.stats.RemoteLatency.Observe(uint64(m.now - ev.issued))
		ev.origDone(ev.value)
		return
	}
	m.buses[ev.target].Request(ev.req)
}

// clusterPort is the memory interface seen by cores of one cluster.
type clusterPort struct {
	m       *Machine
	cluster int
}

// Request routes locally over the map bus or remotely through the Kmap.
func (p *clusterPort) Request(r vn.MemRequest) {
	m := p.m
	target := int(r.Addr / m.cfg.ClusterWords)
	if target >= m.cfg.Clusters {
		panic(fmt.Sprintf("cmstar: address %d beyond cluster space", r.Addr))
	}
	local := r.Addr % m.cfg.ClusterWords
	if target == p.cluster {
		m.stats.LocalRefs.Inc()
		r.Addr = local
		m.buses[target].Request(r)
		return
	}
	// Remote: source Kmap serializes, then the request transits |i-j|
	// hops, queues at the remote bus, and the reply transits back.
	m.stats.RemoteRefs.Inc()
	dist := target - p.cluster
	if dist < 0 {
		dist = -dist
	}
	transit := m.cfg.HopLatency * sim.Cycle(dist)
	// Issue time comes from the engine clock: the pump (which tracks m.now)
	// only steps when events are due, but requests issue mid-tick.
	start := m.engine.Now()
	if m.kmapBusy[p.cluster] > start {
		start = m.kmapBusy[p.cluster]
	}
	m.kmapBusy[p.cluster] = start + m.cfg.KmapService
	issued := m.engine.Now()
	id := m.remoteSeq
	m.remoteSeq++
	m.remoteOut[id] = &remoteRec{issued: issued, transit: transit, origRef: r.Ref, origDone: r.Done}
	remote := r
	remote.Addr = local
	remote.Ref = vn.DoneRef{Kind: doneRefRemoteReply, B: id}
	remote.Done = m.remoteReplyDone(id)
	at := start + m.cfg.KmapService + transit
	m.kq.push(kmapEvent{at: at, target: target, req: remote})
	m.engine.Wake(m.pump, at)
}

// remoteReplyDone returns the bus-side completion of remote reference id:
// schedule the reply's return transit, measured against the transit
// queue's clock exactly as the event-queue formulation did. Both the live
// path and checkpoint restore build the callback here.
func (m *Machine) remoteReplyDone(id uint64) func(vn.Word) {
	return func(v vn.Word) {
		rec := m.remoteOut[id]
		delete(m.remoteOut, id)
		at := m.kq.now + rec.transit
		m.kq.push(kmapEvent{
			at: at, isReply: true,
			value: v, issued: rec.issued, origRef: rec.origRef, origDone: rec.origDone,
		})
		m.engine.Wake(m.pump, at)
	}
}

// Halted reports whether every core halted.
func (m *Machine) Halted() bool {
	for _, c := range m.cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// busy reports in-flight Kmap transits or bus traffic.
func (m *Machine) busy() bool {
	if m.kq.Len() > 0 {
		return true
	}
	for _, b := range m.buses {
		if b.Pending() > 0 {
			return true
		}
	}
	return false
}

// Run drives the shared engine until all cores halt and traffic drains.
func (m *Machine) Run(limit sim.Cycle) (sim.Cycle, error) {
	elapsed, ok := m.engine.Run(func() bool {
		return m.Halted() && !m.busy()
	}, limit)
	if !ok {
		return elapsed, fmt.Errorf("cmstar: did not halt within %d cycles", limit)
	}
	return elapsed, nil
}

// Core returns the k-th core of cluster c.
func (m *Machine) Core(c, k int) *vn.Core { return m.cores[c*m.cfg.CoresPerCluster+k] }

// NumCores returns the total processor count.
func (m *Machine) NumCores() int { return len(m.cores) }

// CoreAt returns core i in flattened order.
func (m *Machine) CoreAt(i int) *vn.Core { return m.cores[i] }

// Poke writes a global address directly.
func (m *Machine) Poke(addr uint32, v vn.Word) {
	m.buses[addr/m.cfg.ClusterWords].Poke(addr%m.cfg.ClusterWords, v)
}

// Peek reads a global address directly.
func (m *Machine) Peek(addr uint32) vn.Word {
	return m.buses[addr/m.cfg.ClusterWords].Peek(addr % m.cfg.ClusterWords)
}

// Stats returns machine-level reference statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

// Engine exposes the simulation engine (scheduling counters).
func (m *Machine) Engine() sim.Driver { return m.engine }

// WorkerSteps reports per-worker shard-step counts (nil when sequential).
func (m *Machine) WorkerSteps() []uint64 {
	if par, ok := m.engine.(*sim.ParallelEngine); ok {
		return par.WorkerSteps()
	}
	return nil
}

// MeanUtilization averages processor utilization.
func (m *Machine) MeanUtilization() float64 {
	u := 0.0
	for _, c := range m.cores {
		u += c.Stats().Utilization()
	}
	return u / float64(len(m.cores))
}
