package cmstar

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/vn"
)

// Checkpoint serialization. A remote reference in flight exists as (a) an
// entry in remoteOut, (b) either a forward transit event, a request queued
// in the remote bus, or a reply transit event. The bus-side callback is
// named by doneRefRemoteReply whose B field is the remoteOut id; restore
// rebuilds the callback from the table.

// doneRefRemoteReply marks a bus-side callback wrapped by the Kmap remote
// path: B is the remoteOut id.
const doneRefRemoteReply = vn.DoneRefMachine

// resolver maps checkpoint DoneRefs back to live callbacks.
func (m *Machine) resolver() vn.DoneResolver {
	cores := vn.Resolver(m.cores)
	return func(ref vn.DoneRef) func(vn.Word) {
		if ref.Kind != doneRefRemoteReply {
			return cores(ref)
		}
		if _, ok := m.remoteOut[ref.B]; !ok {
			return nil
		}
		return m.remoteReplyDone(ref.B)
	}
}

// SaveState appends the whole machine's dynamic state (sim.Stateful).
func (m *Machine) SaveState(e *sim.Enc) {
	e.Tag("cmstar", 1)
	m.engine.(sim.Stateful).SaveState(e)
	e.Cycle(m.now)
	for _, b := range m.kmapBusy {
		e.Cycle(b)
	}
	m.stats.LocalRefs.Save(e)
	m.stats.RemoteRefs.Save(e)
	m.stats.RemoteLatency.Save(e)

	e.U64(m.remoteSeq)
	ids := make([]uint64, 0, len(m.remoteOut))
	for id := range m.remoteOut {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Len(len(ids))
	for _, id := range ids {
		rec := m.remoteOut[id]
		e.U64(id)
		e.Cycle(rec.issued)
		e.Cycle(rec.transit)
		vn.SaveDoneRef(e, rec.origRef)
	}

	e.Cycle(m.kq.now)
	e.U64(m.kq.seq)
	evs := append([]kmapEvent(nil), m.kq.h...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	e.Len(len(evs))
	for _, ev := range evs {
		e.Cycle(ev.at)
		e.U64(ev.seq)
		e.Bool(ev.isReply)
		if ev.isReply {
			e.I64(ev.value)
			e.Cycle(ev.issued)
			vn.SaveDoneRef(e, ev.origRef)
		} else {
			e.Int(ev.target)
			vn.SaveMemRequest(e, ev.req)
		}
	}

	e.Len(len(m.buses))
	for _, b := range m.buses {
		b.SaveTo(e)
	}
	e.Len(len(m.cores))
	for _, c := range m.cores {
		c.SaveState(e)
	}
}

// LoadState restores the machine (sim.Stateful).
func (m *Machine) LoadState(d *sim.Dec) error {
	if err := d.Tag("cmstar", 1); err != nil {
		return err
	}
	if err := m.engine.(sim.Stateful).LoadState(d); err != nil {
		return err
	}
	m.now = d.Cycle()
	for i := range m.kmapBusy {
		m.kmapBusy[i] = d.Cycle()
	}
	m.stats.LocalRefs.Load(d)
	m.stats.RemoteRefs.Load(d)
	m.stats.RemoteLatency.Load(d)

	cores := vn.Resolver(m.cores)
	m.remoteSeq = d.U64()
	for id := range m.remoteOut {
		delete(m.remoteOut, id)
	}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		id := d.U64()
		rec := &remoteRec{issued: d.Cycle(), transit: d.Cycle(), origRef: vn.LoadDoneRef(d)}
		rec.origDone = vn.MustResolve(d, cores, rec.origRef)
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := m.remoteOut[id]; dup {
			d.Failf("duplicate outstanding remote reference %d", id)
			return d.Err()
		}
		m.remoteOut[id] = rec
	}

	resolve := m.resolver()
	m.kq.now = d.Cycle()
	m.kq.seq = d.U64()
	m.kq.h = m.kq.h[:0]
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		ev := kmapEvent{at: d.Cycle(), seq: d.U64(), isReply: d.Bool()}
		if ev.isReply {
			ev.value = d.I64()
			ev.issued = d.Cycle()
			ev.origRef = vn.LoadDoneRef(d)
			ev.origDone = vn.MustResolve(d, cores, ev.origRef)
		} else {
			ev.target = d.Int()
			ev.req = vn.LoadMemRequest(d, resolve)
			if d.Err() == nil && (ev.target < 0 || ev.target >= len(m.buses)) {
				d.Failf("transit event targets cluster %d of %d", ev.target, len(m.buses))
			}
		}
		if d.Err() != nil {
			return d.Err()
		}
		// Events were saved in dispatch order; appending preserves the heap
		// property, and the saved seq keeps tie-breaking identical.
		m.kq.h = append(m.kq.h, ev)
	}

	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.buses) {
		d.Failf("checkpoint has %d buses, machine has %d", n, len(m.buses))
		return d.Err()
	}
	for _, b := range m.buses {
		if err := b.LoadFrom(d, resolve); err != nil {
			return err
		}
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.cores) {
		d.Failf("checkpoint has %d cores, machine has %d", n, len(m.cores))
		return d.Err()
	}
	for _, c := range m.cores {
		if err := c.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

var _ sim.Stateful = (*Machine)(nil)
