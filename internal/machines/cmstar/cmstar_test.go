package cmstar

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vn"
)

// sumLoop reads r2 words starting at r1 and accumulates into r3.
const sumLoop = `
loop:   beq  r2, r0, done
        ld   r4, r1, 0
        add  r3, r3, r4
        addi r1, r1, 1
        addi r2, r2, -1
        j    loop
done:   halt
`

func assemble(t *testing.T, src string) *vn.Program {
	t.Helper()
	p, err := vn.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLocalVsRemoteLatency(t *testing.T) {
	cfg := Config{Clusters: 4, CoresPerCluster: 1, ClusterWords: 1024}
	prog := assemble(t, sumLoop)

	runWithBase := func(base uint32) (sim.Cycle, *Machine) {
		m := New(cfg, prog)
		for a := uint32(0); a < 4*1024; a++ {
			m.Poke(a, 1)
		}
		// only cluster 0's core does work; others halt immediately
		for i := 1; i < m.NumCores(); i++ {
			m.CoreAt(i).Context(0).SetPC(len(prog.Instrs) - 1) // the halt
		}
		m.Core(0, 0).Context(0).SetReg(1, vn.Word(base))
		m.Core(0, 0).Context(0).SetReg(2, 50)
		cycles, err := m.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Core(0, 0).Context(0).Reg(3); got != 50 {
			t.Fatalf("sum = %d, want 50", got)
		}
		return cycles, m
	}

	localCycles, lm := runWithBase(0)    // cluster 0's own memory
	remote1, _ := runWithBase(1024)      // neighbouring cluster
	remote3, rm := runWithBase(3 * 1024) // three hops away
	if !(localCycles < remote1 && remote1 < remote3) {
		t.Fatalf("latency must grow with distance: local=%d 1-hop=%d 3-hop=%d",
			localCycles, remote1, remote3)
	}
	if lm.Stats().RemoteRefs.Value() != 0 {
		t.Fatal("local run made remote references")
	}
	if rm.Stats().RemoteRefs.Value() != 50 {
		t.Fatalf("remote refs = %d, want 50", rm.Stats().RemoteRefs.Value())
	}
}

func TestUtilizationFallsWithRemoteFraction(t *testing.T) {
	// The Cm* lesson: processor utilization collapses as the share of
	// non-local references rises, because the LSI-11 blocks.
	cfg := Config{Clusters: 2, CoresPerCluster: 1, ClusterWords: 1024}
	prog := assemble(t, sumLoop)
	utilFor := func(base uint32) float64 {
		m := New(cfg, prog)
		for a := uint32(0); a < 2048; a++ {
			m.Poke(a, 1)
		}
		m.CoreAt(1).Context(0).SetPC(len(prog.Instrs) - 1)
		m.Core(0, 0).Context(0).SetReg(1, vn.Word(base))
		m.Core(0, 0).Context(0).SetReg(2, 100)
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Core(0, 0).Stats().Utilization()
	}
	local, remote := utilFor(0), utilFor(1024)
	if remote >= local {
		t.Fatalf("remote references must reduce utilization: local=%v remote=%v", local, remote)
	}
	if remote > 0.5*local {
		t.Fatalf("blocking remote references should at least halve utilization: local=%v remote=%v", local, remote)
	}
}

func TestRelaxationSpeedupPlateaus(t *testing.T) {
	// Chaotic relaxation across clusters: each core sweeps its own chunk
	// but reads boundary values from neighbours. Speedup grows, then
	// flattens as remote traffic and Kmap serialization dominate —
	// Deminet's upper limit on cooperating processors.
	relax := `
        ; r1 = chunk base, r2 = cells, r6 = sweeps
sweep:  beq  r6, r0, done
        add  r7, r1, r0
        add  r8, r2, r0
cell:   beq  r8, r0, endsweep
        ld   r3, r7, -1
        ld   r4, r7, 1
        add  r5, r3, r4
        li   r9, 2
        div  r5, r5, r9
        st   r5, r7, 0
        addi r7, r7, 1
        addi r8, r8, -1
        j    cell
endsweep: addi r6, r6, -1
        j    sweep
done:   halt
`
	prog := assemble(t, relax)
	const totalCells = 96
	const sweeps = 4
	timeFor := func(clusters, coresPer int) sim.Cycle {
		cfg := Config{Clusters: clusters, CoresPerCluster: coresPer, ClusterWords: 4096}
		m := New(cfg, prog)
		p := clusters * coresPer
		chunk := totalCells / p
		// lay the cells out contiguously across clusters: cell i at
		// global address (i/perCluster)*4096 + offset... keep it simple:
		// all data in cluster-local slabs with core i's chunk in its own
		// cluster; boundary reads cross slabs only at cluster edges.
		perCluster := chunk * coresPer
		addrOf := func(i int) uint32 {
			c := i / perCluster
			return uint32(c*4096 + 1 + i%perCluster)
		}
		for i := -1; i <= totalCells; i++ {
			var a uint32
			switch {
			case i < 0:
				a = 0
			case i >= totalCells:
				a = addrOf(totalCells-1) + 1
			default:
				a = addrOf(i)
			}
			m.Poke(a, vn.Word(i))
		}
		for q := 0; q < p; q++ {
			h := m.CoreAt(q).Context(0)
			h.SetReg(1, vn.Word(addrOf(q*chunk)))
			h.SetReg(2, vn.Word(chunk))
			h.SetReg(6, sweeps)
		}
		cycles, err := m.Run(20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	t1 := timeFor(1, 1)
	t4 := timeFor(1, 4) // one cluster, four cores: bus shared, no remote
	t8 := timeFor(4, 2) // spread across clusters: remote boundary refs
	if t4 >= t1 {
		t.Fatalf("4 cores in one cluster must beat 1 core: t1=%d t4=%d", t1, t4)
	}
	s4 := float64(t1) / float64(t4)
	s8 := float64(t1) / float64(t8)
	if s8 > 2.5*s4 {
		t.Fatalf("speedup should plateau, not scale: s4=%.2f s8=%.2f", s4, s8)
	}
}

func TestKmapSerializesRemoteTraffic(t *testing.T) {
	// Two cores in cluster 0 hammering cluster 1 share one Kmap; their
	// remote references serialize at it.
	cfg := Config{Clusters: 2, CoresPerCluster: 2, ClusterWords: 1024, KmapService: 10}
	prog := assemble(t, sumLoop)
	m := New(cfg, prog)
	for a := uint32(1024); a < 2048; a++ {
		m.Poke(a, 1)
	}
	for q := 0; q < 2; q++ {
		h := m.Core(0, q).Context(0)
		h.SetReg(1, vn.Word(1024+512*q))
		h.SetReg(2, 20)
	}
	m.Core(1, 0).Context(0).SetPC(len(prog.Instrs) - 1)
	m.Core(1, 1).Context(0).SetPC(len(prog.Instrs) - 1)
	cycles, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// 40 remote refs through a 10-cycle Kmap: at least 400 cycles.
	if cycles < 400 {
		t.Fatalf("Kmap serialization not visible: %d cycles for 40 refs", cycles)
	}
	if m.Stats().RemoteLatency.Count() != 40 {
		t.Fatalf("remote latency observations = %d, want 40", m.Stats().RemoteLatency.Count())
	}
}
