package cmstar

import (
	"testing"

	"repro/internal/simtest"
	"repro/internal/vn"
)

// mixProgram touches both local and remote memory: r1 = private base in the
// home cluster, r2 = remote base, r5 = iterations.
const mixProgram = `
loop:   beq  r5, r0, done
        ld   r3, r1, 0
        add  r4, r4, r3
        ld   r3, r2, 0
        add  r4, r4, r3
        addi r1, r1, 1
        addi r5, r5, -1
        j    loop
done:   st   r4, r1, 64
        halt
`

type cmstarSnapshot struct {
	Cycles        uint64  `json:"cycles"`
	LocalRefs     uint64  `json:"local_refs"`
	RemoteRefs    uint64  `json:"remote_refs"`
	RemoteLatMean float64 `json:"remote_latency_mean"`
	RemoteLatMax  uint64  `json:"remote_latency_max"`
	CoreBusy      uint64  `json:"core_busy"`
	CoreIdle      uint64  `json:"core_idle"`
	CoreMemWait   uint64  `json:"core_mem_wait"`
	CoreRetired   uint64  `json:"core_retired"`
	MeanUtil      float64 `json:"mean_utilization"`
}

// TestGoldenLocalRemoteMix pins a workload where every core alternates
// between its own cluster's bus and a remote cluster through the Kmap:
// events, kmap serialization, hop transit, and bus contention all engage.
func TestGoldenLocalRemoteMix(t *testing.T) {
	prog, err := vn.Assemble(mixProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Clusters: 4, CoresPerCluster: 2, ClusterWords: 1 << 12}
	m := New(cfg, prog)
	words := uint32(1 << 12)
	for i := 0; i < m.NumCores(); i++ {
		cluster := i / cfg.CoresPerCluster
		ctx := m.CoreAt(i).Context(0)
		// private base inside the home cluster, remote base in the farthest
		// cluster from it
		ctx.SetReg(1, vn.Word(uint32(cluster)*words+100+uint32(i)*16))
		far := cfg.Clusters - 1 - cluster
		ctx.SetReg(2, vn.Word(uint32(far)*words+500+uint32(i)*16))
		ctx.SetReg(5, 12)
	}
	cycles, err := m.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	snap := cmstarSnapshot{
		Cycles:        uint64(cycles),
		LocalRefs:     st.LocalRefs.Value(),
		RemoteRefs:    st.RemoteRefs.Value(),
		RemoteLatMean: st.RemoteLatency.Mean(),
		RemoteLatMax:  st.RemoteLatency.Max(),
		MeanUtil:      m.MeanUtilization(),
	}
	for i := 0; i < m.NumCores(); i++ {
		cs := m.CoreAt(i).Stats()
		snap.CoreBusy += cs.Busy.Value()
		snap.CoreIdle += cs.Idle.Value()
		snap.CoreMemWait += cs.MemWait.Value()
		snap.CoreRetired += cs.Retired.Value()
	}
	simtest.Check(t, "testdata/golden_mix.json", snap)
}
