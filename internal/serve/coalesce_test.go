package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCoalescingExecutesOnce fires N concurrent identical submissions
// through a real HTTP server and asserts exactly one underlying
// execution: one leader reports "miss", every other caller reports
// "coalesced", and all N response bodies are byte-identical. Run under
// -race in CI, this is also the concurrency soundness check for the
// flight/cache/pool plumbing.
func TestCoalescingExecutesOnce(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, Backlog: 16})
	gate := make(chan struct{})
	s.runStarted = func(string) { <-gate }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := runBody(t, KindVNAsm, "vn", storeAsm(7), nil)
	spec := &JobSpec{Kind: KindVNAsm, Machine: "vn", Program: storeAsm(7)}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	key := spec.Key(s.CodeVersion())

	const n = 8
	bodies := make([][]byte, n)
	sources := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
			sources[i] = resp.Header.Get("X-Cache")
		}(i)
	}

	// Hold the execution open until every other submitter has provably
	// joined the in-flight call, so nothing can sidestep coalescing by
	// arriving late and hitting the cache.
	waitFor(t, "all followers joined", func() bool { return s.flight.followersOf(key) == n-1 })
	close(gate)
	wg.Wait()

	st := s.Stats()
	if st.Executions != 1 {
		t.Errorf("executions = %d, want exactly 1", st.Executions)
	}
	if st.Coalesced != n-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	var miss, coalesced int
	for i, src := range sources {
		switch src {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d: X-Cache = %q", i, src)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: response differs from request 0", i)
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Errorf("sources = 1 miss + %d coalesced? got %d miss, %d coalesced", n-1, miss, coalesced)
	}
}

// TestFollowerPromotedOnLeaderCancel: when the leader's client vanishes
// mid-run, its execution dies with it — but a still-live follower must
// not inherit the corpse. It retries, becomes the leader, and completes;
// the total execution count stays one because the aborted run never
// finished.
func TestFollowerPromotedOnLeaderCancel(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	starts := make(chan string, 4)
	gate := make(chan struct{})
	s.runStarted = func(key string) {
		starts <- key
		<-gate
	}

	// countdownAsm spans several engine slices, so a canceled context is
	// observed at a slice boundary before the run can finish.
	spec := &JobSpec{Kind: KindVNAsm, Machine: "vn", Program: countdownAsm}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	key := spec.Key(s.CodeVersion())

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := s.execute(leaderCtx, spec, key)
		leaderErr <- err
	}()
	<-starts // leader holds a worker slot, blocked on the gate

	type outcome struct {
		body   []byte
		source string
		err    error
	}
	followerOut := make(chan outcome, 1)
	go func() {
		b, src, err := s.execute(context.Background(), spec, key)
		followerOut <- outcome{b, src, err}
	}()
	waitFor(t, "follower joined the flight", func() bool { return s.flight.followersOf(key) == 1 })

	// Kill the leader's client, then let the engine turn: the leader
	// aborts at its first slice check and takes the shared flight down
	// with a Canceled error.
	cancelLeader()
	close(gate)
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}

	// The follower is promoted: it re-runs the job itself (the second
	// runStarted call) and succeeds.
	out := <-followerOut
	if out.err != nil {
		t.Fatalf("promoted follower failed: %v", out.err)
	}
	if out.source != "miss" {
		t.Errorf("promoted follower source = %q, want miss (it executed)", out.source)
	}
	res := decodeResult(t, out.body)
	if res.Result == nil || *res.Result != 7 {
		t.Errorf("promoted follower result = %v, want 7", res.Result)
	}
	if got := s.Stats().Executions; got != 1 {
		t.Errorf("executions = %d, want 1 (the aborted leader run must not count)", got)
	}
	if len(starts) == 0 {
		t.Error("follower was never promoted to run the job itself")
	}
}
