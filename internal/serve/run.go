package serve

import (
	"context"
	"net/http"
	"strings"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/machines/cmmp"
	"repro/internal/machines/cmstar"
	"repro/internal/machines/hep"
	"repro/internal/machines/ultra"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/vn"
)

// ResultAddr is where vn assembly programs store their answer — the
// conformance generator's convention, shared so generated load-test
// programs run unmodified.
const ResultAddr = conformance.ResultAddr

// sliceCycles is the engine budget between cancellation checks: every
// cycle-accurate run advances in slices of at most this many cycles,
// polling the request context in between. The machines' pause/resume
// contract (a Run that hits its limit leaves the machine intact and
// resumable, PR 7) makes the sliced run bit-identical to an
// uninterrupted one, so cancellation costs nothing on the simulated
// timeline — it only bounds how long a dead request can hold a worker.
const sliceCycles = 20_000

// RunResult is the deterministic payload of one job. It deliberately
// carries no wall-clock timing — encoding it to JSON yields identical
// bytes for identical specs on any host at any time, which is what lets
// a cache hit be compared byte-for-byte against a cold run. Timing
// travels in response headers instead.
type RunResult struct {
	Key         string `json:"key"`
	CodeVersion string `json:"code_version"`
	Machine     string `json:"machine,omitempty"`
	Experiment  string `json:"experiment,omitempty"`
	// Results are a dataflow program's return values; Result is a vn
	// program's answer word at ResultAddr.
	Results []string `json:"results,omitempty"`
	Result  *int64   `json:"result,omitempty"`
	Cycles  uint64   `json:"cycles,omitempty"`
	// Stats holds per-machine counters; encoding/json sorts the keys,
	// keeping the rendering canonical.
	Stats  map[string]uint64 `json:"stats,omitempty"`
	Engine *sim.Counters     `json:"engine_counters,omitempty"`
	// Finding and Tables carry an experiment job's report.
	Finding string   `json:"finding,omitempty"`
	Tables  []string `json:"tables,omitempty"`
}

// experimentFns indexes the paper experiments by ID. Experiment jobs run
// in quick mode; unlike program jobs they are not interruptible between
// slices (the experiment drivers own their machines), so they rely on
// quick-mode scale to stay bounded.
var experimentFns = map[string]func(experiments.Options) experiments.Result{
	"E1": experiments.E1LatencyTolerance, "E2": experiments.E2ContextCounts,
	"E3": experiments.E3CacheCoherence, "E4": experiments.E4ReadBeforeWrite,
	"E5": experiments.E5Trapezoid, "E6": experiments.E6PipelineAnatomy,
	"E7": experiments.E7Cmmp, "E8": experiments.E8Cmstar,
	"E9": experiments.E9FetchAndAdd, "E10": experiments.E10ConnectionMachine,
	"E11": experiments.E11Emulator, "E12": experiments.E12VLIW,
	"E13": experiments.E13ParallelismGrail, "E14": experiments.E14ConformanceSweep,
}

// runJob executes a normalized spec and returns its deterministic
// result. Errors are *apiError (including context cancellation, mapped
// by the caller) so every failure has exactly one HTTP status.
func runJob(ctx context.Context, spec *JobSpec) (*RunResult, error) {
	if spec.Experiment != "" {
		return runExperiment(spec.Experiment)
	}
	switch spec.Machine {
	case "interp":
		return runInterpJob(spec)
	case "direct":
		return runDirectJob(spec)
	case "ttda":
		return runTTDAJob(ctx, spec)
	case "vn":
		return runVNJob(ctx, spec)
	default:
		return runBaselineJob(ctx, spec)
	}
}

func runExperiment(expID string) (*RunResult, error) {
	fn, ok := experimentFns[expID]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown experiment %q", expID)
	}
	r := fn(experiments.Options{Quick: true})
	if r.Err != nil {
		return nil, errf(http.StatusInternalServerError, "experiment %s failed: %v", expID, r.Err)
	}
	out := &RunResult{Experiment: expID, Finding: r.Finding}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, t.String())
	}
	return out, nil
}

// compileID compiles MiniID source and builds entry tokens; every
// failure here is the submitter's fault (400).
func compileID(spec *JobSpec) (*graph.Program, []token.Value, error) {
	prog, err := id.Compile(spec.Program)
	if err != nil {
		return nil, nil, errf(http.StatusBadRequest, "compile minid: %v", err)
	}
	vals := make([]token.Value, len(spec.Args))
	for i, a := range spec.Args {
		vals[i] = token.Int(a)
	}
	args, err := id.EntryArgs(prog, vals)
	if err != nil {
		return nil, nil, errf(http.StatusBadRequest, "entry args: %v", err)
	}
	return prog, args, nil
}

func runInterpJob(spec *JobSpec) (*RunResult, error) {
	prog, args, err := compileID(spec)
	if err != nil {
		return nil, err
	}
	it := graph.NewInterp(prog)
	it.SetMaxSteps(spec.Config.MaxCycles)
	res, err := it.Run(args...)
	if err != nil {
		return nil, errf(http.StatusUnprocessableEntity, "interp: %v", err)
	}
	out := &RunResult{Machine: spec.Machine, Stats: map[string]uint64{
		"fired":           it.Fired(),
		"tokens":          it.Tokens(),
		"critical_path":   uint64(it.Depth()),
		"max_parallelism": uint64(it.MaxParallelism()),
	}}
	for _, v := range res {
		out.Results = append(out.Results, v.String())
	}
	return out, nil
}

// runDirectJob serves result-only traffic on the direct-execution oracle
// backend: no cycle model, no engine, just the program's answer at native
// Go speed. MaxCycles bounds instruction firings here — the backend's
// only notion of time — so runaway programs still 422 instead of holding
// a worker.
func runDirectJob(spec *JobSpec) (*RunResult, error) {
	prog, args, err := compileID(spec)
	if err != nil {
		return nil, err
	}
	x := direct.New(prog)
	x.SetMaxSteps(spec.Config.MaxCycles)
	res, err := x.Run(args...)
	if err != nil {
		return nil, errf(http.StatusUnprocessableEntity, "direct: %v", err)
	}
	out := &RunResult{Machine: spec.Machine, Stats: map[string]uint64{
		"fired": x.Fired(),
	}}
	for _, v := range res {
		out.Results = append(out.Results, v.String())
	}
	return out, nil
}

// pausedErr reports a Run error that only means "cycle limit reached,
// machine intact" — the resumable pause every engine-backed machine
// signals with a "did not finish/halt within" error.
func pausedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "did not")
}

// checkSlice accounts one slice of a sliced run and decides whether to
// keep going: nil keeps running, any error aborts. Context errors are
// returned bare so the HTTP layer can tell a gone client (499) from a
// per-request timeout (504).
func checkSlice(ctx context.Context, total *uint64, budget uint64, max uint64) error {
	*total += budget
	if *total >= max {
		return errf(http.StatusUnprocessableEntity, "program did not finish within max_cycles=%d", max)
	}
	return ctx.Err()
}

func runTTDAJob(ctx context.Context, spec *JobSpec) (*RunResult, error) {
	prog, args, err := compileID(spec)
	if err != nil {
		return nil, err
	}
	c := spec.Config
	m := core.NewMachine(core.Config{
		PEs:         c.PEs,
		NetLatency:  sim.Cycle(c.NetLatency),
		Shards:      c.Shards,
		EpochWindow: c.EpochWindow,
		Compiled:    c.Compiled,
	}, prog)
	var res []token.Value
	var total uint64
	for {
		budget := min(uint64(sliceCycles), c.MaxCycles-total)
		res, err = m.Run(sim.Cycle(budget), args...)
		if err == nil {
			break
		}
		if !pausedErr(err) {
			return nil, errf(http.StatusUnprocessableEntity, "ttda: %v", err)
		}
		if err := checkSlice(ctx, &total, budget, c.MaxCycles); err != nil {
			return nil, err
		}
	}
	sum := m.Summarize()
	eng := m.Engine().Counters()
	out := &RunResult{
		Machine: spec.Machine,
		Cycles:  sum.Cycles,
		Stats: map[string]uint64{
			"fired":     sum.Fired,
			"matches":   sum.Matches,
			"net_sends": sum.NetSends,
			"is_reads":  sum.ISReads,
			"is_writes": sum.ISWrites,
		},
		Engine: &eng,
	}
	for _, v := range res {
		out.Results = append(out.Results, v.String())
	}
	return out, nil
}

func assemble(spec *JobSpec) (*vn.Program, error) {
	prog, err := vn.Assemble(spec.Program)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "assemble vnasm: %v", err)
	}
	return prog, nil
}

// vnStats flattens core 0's counters into the result's stats map.
func vnStats(st map[string]uint64, c *vn.Core) {
	s := c.Stats()
	st["busy"] = s.Busy.Value()
	st["idle"] = s.Idle.Value()
	st["mem_ops"] = s.MemOps.Value()
	st["mem_wait"] = s.MemWait.Value()
	st["switches"] = s.Switches.Value()
	st["retired"] = s.Retired.Value()
}

func runVNJob(ctx context.Context, spec *JobSpec) (*RunResult, error) {
	prog, err := assemble(spec)
	if err != nil {
		return nil, err
	}
	c := spec.Config
	mem := vn.NewLatencyMemory(sim.Cycle(c.MemLatency))
	cpu := vn.NewCore(prog, mem, c.Contexts)
	eng := sim.NewEngine()
	eng.Register(mem)
	eng.Register(cpu)
	halted := func() bool { return cpu.Halted() && mem.Pending() == 0 }
	var total uint64
	for {
		budget := min(uint64(sliceCycles), c.MaxCycles-total)
		elapsed, ok := eng.Run(halted, sim.Cycle(budget))
		if ok {
			total += uint64(elapsed)
			break
		}
		if err := checkSlice(ctx, &total, budget, c.MaxCycles); err != nil {
			return nil, err
		}
	}
	result := int64(mem.Peek(ResultAddr))
	cnt := eng.Counters()
	out := &RunResult{
		Machine: spec.Machine,
		Result:  &result,
		Cycles:  total,
		Stats:   map[string]uint64{},
		Engine:  &cnt,
	}
	vnStats(out.Stats, cpu)
	return out, nil
}

// baseline abstracts the four multiprocessor baselines behind the two
// calls the sliced runner needs.
type baseline interface {
	Run(limit sim.Cycle) (sim.Cycle, error)
	Engine() sim.Driver
}

// park points every context of cores [1, total) at the trailing halt,
// leaving core 0 to run the submitted program alone — the experiments'
// single-stream idiom, matching the conformance fleet.
func park(total int, coreAt func(int) *vn.Core, prog *vn.Program) {
	last := len(prog.Instrs) - 1
	for i := 1; i < total; i++ {
		coreAt(i).Context(0).SetPC(last)
	}
}

func runBaselineJob(ctx context.Context, spec *JobSpec) (*RunResult, error) {
	prog, err := assemble(spec)
	if err != nil {
		return nil, err
	}
	c := spec.Config
	var (
		m      baseline
		core0  *vn.Core
		peek   func() int64
		extras func(map[string]uint64)
	)
	switch spec.Machine {
	case "cmmp":
		mm := cmmp.New(cmmp.Config{Processors: 2, Banks: 2, Shards: c.Shards}, prog, 1)
		park(2, mm.Core, prog)
		core0 = mm.Core(0)
		peek = func() int64 { return int64(mm.Peek(ResultAddr)) }
		extras = func(st map[string]uint64) { st["xbar_delivered"] = mm.Crossbar().Stats().Delivered.Value() }
		m = mm
	case "cmstar":
		mm := cmstar.New(cmstar.Config{Clusters: 8, CoresPerCluster: 1, ClusterWords: 32, HopLatency: 3, Shards: c.Shards}, prog)
		park(mm.NumCores(), mm.CoreAt, prog)
		core0 = mm.CoreAt(0)
		peek = func() int64 { return int64(mm.Peek(ResultAddr)) }
		extras = func(st map[string]uint64) {
			st["local_refs"] = mm.Stats().LocalRefs.Value()
			st["remote_refs"] = mm.Stats().RemoteRefs.Value()
		}
		m = mm
	case "ultra":
		mm := ultra.New(ultra.Config{LogProcessors: 2, Combining: c.Combining, Shards: c.Shards}, prog)
		park(mm.NumProcessors(), mm.Core, prog)
		core0 = mm.Core(0)
		peek = func() int64 { return int64(mm.Peek(ResultAddr)) }
		extras = func(st map[string]uint64) {
			st["bank0_served"] = mm.BankServed(0)
			st["combine_ops"] = mm.Network().CombineOps.Value()
		}
		m = mm
	case "hep":
		mm := hep.New(hep.Config{Processors: 2, ContextsPerCore: 1, MemLatency: 4, Shards: c.Shards}, prog)
		park(2, mm.Core, prog)
		core0 = mm.Core(0)
		peek = func() int64 { return int64(mm.Memory().Peek(ResultAddr)) }
		extras = func(map[string]uint64) {}
		m = mm
	default:
		return nil, errf(http.StatusNotFound, "unknown machine %q", spec.Machine)
	}

	var total uint64
	for {
		budget := min(uint64(sliceCycles), c.MaxCycles-total)
		elapsed, err := m.Run(sim.Cycle(budget))
		if err == nil {
			total += uint64(elapsed)
			break
		}
		if !pausedErr(err) {
			return nil, errf(http.StatusUnprocessableEntity, "%s: %v", spec.Machine, err)
		}
		if err := checkSlice(ctx, &total, budget, c.MaxCycles); err != nil {
			return nil, err
		}
	}
	result := peek()
	cnt := m.Engine().Counters()
	out := &RunResult{
		Machine: spec.Machine,
		Result:  &result,
		Cycles:  total,
		Stats:   map[string]uint64{},
		Engine:  &cnt,
	}
	vnStats(out.Stats, core0)
	extras(out.Stats)
	return out, nil
}
