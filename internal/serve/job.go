// Package serve turns the reproduction into a long-running simulation
// service: an HTTP/JSON API that accepts MiniID or vn assembly programs
// (or named experiments, or the cycle-free direct oracle backend for
// result-only traffic), runs them on a chosen machine model through a
// bounded worker pool, coalesces concurrent identical submissions into
// one execution, and caches results content-addressed by a canonical
// hash of (program, machine, config, code version).
//
// The design leans on the repository's central property: every
// simulation is deterministic, bit-for-bit, at any shard count, window
// setting, or execution mode (the conformance suite's eight oracle
// families enforce it). Determinism is what makes the cache exact — a
// hit is not an approximation of a rerun, it *is* the rerun, byte for
// byte — and what makes coalescing safe: concurrent identical
// submissions can share one execution because there is exactly one
// possible answer.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"regexp"
)

// Program kinds.
const (
	// KindMiniID is MiniID source compiled through internal/id for the
	// dataflow substrates (interp, ttda).
	KindMiniID = "minid"
	// KindVNAsm is vn assembly for the von Neumann baselines (vn, cmmp,
	// cmstar, ultra, hep). Programs are self-contained and store their
	// answer at ResultAddr, the conformance harness's convention.
	KindVNAsm = "vnasm"
)

// MaxProgramBytes bounds submitted program source. The HTTP layer's body
// limit is slightly larger so an oversized program inside a valid JSON
// document fails with a clear 400 rather than a truncation error.
const MaxProgramBytes = 128 << 10

// Config is the machine configuration of a job. Fields that do not
// apply to the chosen machine are zeroed during validation, so two
// specs differing only in an inapplicable knob share one cache entry.
type Config struct {
	// PEs and NetLatency configure the TTDA (defaults 4 and 2).
	PEs        int    `json:"pes,omitempty"`
	NetLatency uint64 `json:"net_latency,omitempty"`
	// Shards and EpochWindow select the conservative parallel kernel on
	// the machines that shard (ttda, cmmp, cmstar, ultra, hep). Results
	// are bit-identical at any setting; they still key the cache, which
	// keeps the stored engine counters exact for the mode that ran.
	Shards      int `json:"shards,omitempty"`
	EpochWindow int `json:"epoch_window,omitempty"`
	// Compiled runs the TTDA through the ahead-of-time compiled plan.
	Compiled bool `json:"compiled,omitempty"`
	// Contexts and MemLatency configure the single-core vn machine
	// (defaults 1 and 4).
	Contexts   int    `json:"contexts,omitempty"`
	MemLatency uint64 `json:"mem_latency,omitempty"`
	// Combining enables the Ultracomputer's combining omega network.
	Combining bool `json:"combining,omitempty"`
	// MaxCycles bounds the simulation (default 50M, cap 500M). A run
	// that exhausts it is a client error, not a cached result.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// JobSpec is one submission: exactly one of Program (with Kind and
// Machine) or Experiment.
type JobSpec struct {
	// Program is MiniID or vn assembly source, per Kind.
	Program string `json:"program,omitempty"`
	Kind    string `json:"kind,omitempty"`
	// Machine names the model to run Program on: interp, direct, ttda,
	// vn, cmmp, cmstar, ultra, hep.
	Machine string `json:"machine,omitempty"`
	// Args are the integer entry arguments of a MiniID program's main.
	Args []int64 `json:"args,omitempty"`
	// Experiment names a paper experiment (E1..E14) to run in quick
	// mode instead of a submitted program.
	Experiment string  `json:"experiment,omitempty"`
	Config     *Config `json:"config,omitempty"`
}

// apiError is an error with an HTTP status. Every validation and run
// failure maps to exactly one status so the API contract is testable.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

func errf(status int, format string, args ...interface{}) *apiError {
	return &apiError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// machineKind maps each runnable machine to the program form it
// executes. Absence means an unknown machine (404).
var machineKind = map[string]string{
	"interp": KindMiniID,
	"direct": KindMiniID,
	"ttda":   KindMiniID,
	"vn":     KindVNAsm,
	"cmmp":   KindVNAsm,
	"cmstar": KindVNAsm,
	"ultra":  KindVNAsm,
	"hep":    KindVNAsm,
}

var experimentID = regexp.MustCompile(`^E([1-9]|1[0-4])$`)

// normalize validates the spec, applies defaults, and zeroes
// configuration fields the chosen machine ignores. It must be called
// before Key: the canonical hash is taken over the normalized spec, so
// an explicitly-defaulted config and an omitted one address the same
// cache entry, while any meaningful field change produces a new key.
func (s *JobSpec) normalize() error {
	if s.Config == nil {
		s.Config = &Config{}
	}
	c := s.Config
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.MaxCycles > 500_000_000 {
		return errf(http.StatusBadRequest, "max_cycles %d exceeds the 500M cap", c.MaxCycles)
	}
	if s.Experiment != "" {
		if s.Program != "" || s.Kind != "" || s.Machine != "" || len(s.Args) != 0 {
			return errf(http.StatusBadRequest, "experiment jobs take no program, kind, machine, or args")
		}
		if !experimentID.MatchString(s.Experiment) {
			return errf(http.StatusNotFound, "unknown experiment %q (want E1..E14)", s.Experiment)
		}
		*c = Config{MaxCycles: c.MaxCycles}
		return nil
	}
	if s.Program == "" {
		return errf(http.StatusBadRequest, "submission needs a program (with kind and machine) or an experiment")
	}
	if len(s.Program) > MaxProgramBytes {
		return errf(http.StatusBadRequest, "program source is %d bytes; the limit is %d", len(s.Program), MaxProgramBytes)
	}
	if s.Kind != KindMiniID && s.Kind != KindVNAsm {
		return errf(http.StatusBadRequest, "unknown program kind %q (want %q or %q)", s.Kind, KindMiniID, KindVNAsm)
	}
	want, known := machineKind[s.Machine]
	if !known {
		return errf(http.StatusNotFound, "unknown machine %q", s.Machine)
	}
	if s.Kind != want {
		return errf(http.StatusBadRequest, "machine %q runs %q programs, not %q", s.Machine, want, s.Kind)
	}
	if s.Kind == KindVNAsm && len(s.Args) != 0 {
		return errf(http.StatusBadRequest, "vn assembly programs are self-contained; args apply only to minid")
	}

	// Per-machine defaults, and zeroing of inapplicable knobs.
	shards, window := c.Shards, c.EpochWindow
	contexts, memLat := c.Contexts, c.MemLatency
	pes, netLat := c.PEs, c.NetLatency
	combining, compiled := c.Combining, c.Compiled
	*c = Config{MaxCycles: c.MaxCycles}
	switch s.Machine {
	case "interp", "direct":
		// Host-side evaluation: no machine knobs at all.
	case "ttda":
		c.PEs, c.NetLatency = pes, netLat
		if c.PEs <= 0 {
			c.PEs = 4
		}
		if c.NetLatency == 0 {
			c.NetLatency = 2
		}
		c.Shards, c.EpochWindow, c.Compiled = shards, window, compiled
	case "vn":
		c.Contexts, c.MemLatency = contexts, memLat
		if c.Contexts <= 0 {
			c.Contexts = 1
		}
		if c.MemLatency == 0 {
			c.MemLatency = 4
		}
	case "ultra":
		c.Shards, c.Combining = shards, combining
	default: // cmmp, cmstar, hep
		c.Shards = shards
	}
	if c.Shards < 0 || c.Shards > 64 {
		return errf(http.StatusBadRequest, "shards %d out of range [0,64]", c.Shards)
	}
	if c.Shards <= 1 && c.EpochWindow != 0 {
		return errf(http.StatusBadRequest, "epoch_window requires shards > 1")
	}
	return nil
}

// Key is the canonical content address of a normalized spec: a SHA-256
// over a fixed-order rendering of every meaningful field plus the
// producing code version. Determinism makes the address exact — equal
// keys imply byte-identical results — and the code version keeps
// entries from leaking across simulator revisions, where a one-cycle
// behavioural change would otherwise serve stale numbers forever.
func (s *JobSpec) Key(codeVersion string) string {
	h := sha256.New()
	c := s.Config
	fmt.Fprintf(h, "critique-serve/1\ncode=%s\n", codeVersion)
	fmt.Fprintf(h, "experiment=%s\nkind=%s\nmachine=%s\nargs=%v\n", s.Experiment, s.Kind, s.Machine, s.Args)
	fmt.Fprintf(h, "pes=%d net_latency=%d shards=%d epoch_window=%d compiled=%t contexts=%d mem_latency=%d combining=%t max_cycles=%d\n",
		c.PEs, c.NetLatency, c.Shards, c.EpochWindow, c.Compiled, c.Contexts, c.MemLatency, c.Combining, c.MaxCycles)
	fmt.Fprintf(h, "program=%d\n%s", len(s.Program), s.Program)
	return hex.EncodeToString(h.Sum(nil))
}
