package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Test programs. storeAsm(v) stores v at ResultAddr and halts in one
// engine slice; countdownAsm spins long enough to span several slices
// before storing 7; spinAsm never halts.
func storeAsm(v int) string {
	return fmt.Sprintf("        li   r1, %d\n        li   r2, %d\n        st   r1, r2, 0\n        halt\n", v, ResultAddr)
}

const countdownAsm = `        li   r1, 30000
        li   r2, 1
loop:   sub  r1, r1, r2
        bne  r1, r0, loop
        li   r3, 7
        li   r4, 64
        st   r3, r4, 0
        halt
`

const spinAsm = "spin:   j    spin\n        halt\n"

const doubleID = "def main(n) = n * 2;"

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

// doJSON drives the handler directly (no network); the HTTP-level tests
// that need a real client connection use httptest.NewServer instead.
func doJSON(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func runBody(t *testing.T, kind, machine, program string, args []int64) string {
	return specBody(t, &JobSpec{Kind: kind, Machine: machine, Program: program, Args: args})
}

func specBody(t *testing.T, spec *JobSpec) string {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeResult(t *testing.T, body []byte) *RunResult {
	t.Helper()
	res := &RunResult{}
	if err := json.Unmarshal(body, res); err != nil {
		t.Fatalf("decode result: %v\nbody: %s", err, body)
	}
	return res
}

func TestRunMiniID(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, machine := range []string{"interp", "ttda"} {
		body := runBody(t, KindMiniID, machine, doubleID, []int64{21})
		rr := doJSON(t, s, "POST", "/v1/run", body)
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", machine, rr.Code, rr.Body)
		}
		if got := rr.Header().Get("X-Cache"); got != "miss" {
			t.Errorf("%s: X-Cache = %q, want miss", machine, got)
		}
		res := decodeResult(t, rr.Body.Bytes())
		if len(res.Results) != 1 || res.Results[0] != "42" {
			t.Errorf("%s: results = %v, want [42]", machine, res.Results)
		}
		if res.Key == "" || res.CodeVersion != s.CodeVersion() {
			t.Errorf("%s: key %q / code_version %q not stamped", machine, res.Key, res.CodeVersion)
		}
		if machine == "ttda" && (res.Cycles == 0 || res.Engine == nil) {
			t.Errorf("ttda: cycles %d, engine %v — want cycle-accurate counters", res.Cycles, res.Engine)
		}

		again := doJSON(t, s, "POST", "/v1/run", body)
		if got := again.Header().Get("X-Cache"); got != "hit" {
			t.Errorf("%s repeat: X-Cache = %q, want hit", machine, got)
		}
		if again.Body.String() != rr.Body.String() {
			t.Errorf("%s repeat: hit body differs from cold body", machine)
		}
	}
}

func TestRunVNAndBaselines(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, machine := range []string{"vn", "cmmp", "cmstar", "ultra", "hep"} {
		rr := doJSON(t, s, "POST", "/v1/run", runBody(t, KindVNAsm, machine, storeAsm(7), nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", machine, rr.Code, rr.Body)
		}
		res := decodeResult(t, rr.Body.Bytes())
		if res.Result == nil || *res.Result != 7 {
			t.Errorf("%s: result = %v, want 7", machine, res.Result)
		}
		if res.Cycles == 0 || res.Engine == nil {
			t.Errorf("%s: cycles %d, engine %v — want cycle-accurate counters", machine, res.Cycles, res.Engine)
		}
	}
}

func TestRunExperiment(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/run", `{"experiment":"E5"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	res := decodeResult(t, rr.Body.Bytes())
	if res.Experiment != "E5" || res.Finding == "" || len(res.Tables) == 0 {
		t.Errorf("experiment result incomplete: %+v", res)
	}
}

// TestErrorContract pins the one-status-per-failure contract: malformed
// programs are 400, unknown machines and experiments are 404, budget
// exhaustion is 422.
func TestErrorContract(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", "{", http.StatusBadRequest},
		{"unknown field", `{"progrm":"x"}`, http.StatusBadRequest},
		{"empty spec", `{}`, http.StatusBadRequest},
		{"program and experiment", `{"experiment":"E1","kind":"minid","machine":"ttda","program":"def main(n) = n;"}`, http.StatusBadRequest},
		{"unknown experiment", `{"experiment":"E15"}`, http.StatusNotFound},
		{"unknown machine", runBody(t, KindMiniID, "vax", doubleID, nil), http.StatusNotFound},
		{"unknown kind", runBody(t, "fortran", "ttda", doubleID, nil), http.StatusBadRequest},
		{"kind/machine mismatch", runBody(t, KindMiniID, "vn", doubleID, nil), http.StatusBadRequest},
		{"args on vnasm", runBody(t, KindVNAsm, "vn", storeAsm(1), []int64{3}), http.StatusBadRequest},
		{"minid syntax error", runBody(t, KindMiniID, "interp", "def main( = ;", nil), http.StatusBadRequest},
		{"minid syntax error on ttda", runBody(t, KindMiniID, "ttda", "def main( = ;", nil), http.StatusBadRequest},
		{"vnasm syntax error", runBody(t, KindVNAsm, "vn", "frob r1, r2", nil), http.StatusBadRequest},
		{"shards out of range", `{"kind":"minid","machine":"ttda","program":"def main(n) = n;","config":{"shards":65}}`, http.StatusBadRequest},
		{"epoch window without shards", `{"kind":"minid","machine":"ttda","program":"def main(n) = n;","config":{"epoch_window":8}}`, http.StatusBadRequest},
		{"max_cycles over cap", `{"kind":"minid","machine":"ttda","program":"def main(n) = n;","config":{"max_cycles":600000000}}`, http.StatusBadRequest},
		{"cycle budget exhausted", specBody(t, &JobSpec{Kind: KindVNAsm, Machine: "vn", Program: spinAsm, Config: &Config{MaxCycles: 100_000}}), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doJSON(t, s, "POST", "/v1/run", tc.body)
			if rr.Code != tc.want {
				t.Fatalf("status = %d, want %d: %s", rr.Code, tc.want, rr.Body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("error body %q is not {\"error\":...}: %v", rr.Body, err)
			}
		})
	}
}

func TestOversizedBody413(t *testing.T) {
	s := newTestServer(t, Options{MaxBody: 512})
	body := runBody(t, KindVNAsm, "vn", strings.Repeat("; padding\n", 200)+storeAsm(1), nil)
	rr := doJSON(t, s, "POST", "/v1/run", body)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", rr.Code, rr.Body)
	}
}

func TestOversizedProgram400(t *testing.T) {
	// A program over MaxProgramBytes inside a body the transport still
	// accepts must fail validation (400), not body-limit truncation.
	s := newTestServer(t, Options{MaxBody: 2 * MaxProgramBytes})
	body := runBody(t, KindVNAsm, "vn", strings.Repeat("; x\n", MaxProgramBytes/4+16)+storeAsm(1), nil)
	rr := doJSON(t, s, "POST", "/v1/run", body)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rr.Code, rr.Body)
	}
}

func TestPerRequestTimeout504(t *testing.T) {
	s := newTestServer(t, Options{Timeout: 50 * time.Millisecond})
	rr := doJSON(t, s, "POST", "/v1/run", runBody(t, KindVNAsm, "vn", spinAsm, nil))
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rr.Code, rr.Body)
	}
}

// TestCancellationFreesWorker is the client-disconnect contract: a
// canceled request must stop its simulation at the next engine slice and
// release the worker slot, and the aborted run must not count (or be
// cached) as an execution.
func TestCancellationFreesWorker(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, Backlog: 8})
	started := make(chan struct{}, 2)
	s.runStarted = func(string) { started <- struct{}{} }

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(runBody(t, KindVNAsm, "vn", spinAsm, nil))).WithContext(ctx)
	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rr, req)
	}()
	<-started // the spin job holds the only worker slot
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled request did not return; the engine kept the worker slot")
	}
	if rr.Code != statusClientClosedRequest {
		t.Errorf("canceled request status = %d, want %d: %s", rr.Code, statusClientClosedRequest, rr.Body)
	}

	// The slot must be free again: a quick job on the same 1-worker pool
	// completes.
	rr2 := doJSON(t, s, "POST", "/v1/run", runBody(t, KindVNAsm, "vn", storeAsm(7), nil))
	if rr2.Code != http.StatusOK {
		t.Fatalf("follow-up job status = %d, want 200: %s", rr2.Code, rr2.Body)
	}
	st := s.Stats()
	if st.Executions != 1 {
		t.Errorf("executions = %d, want 1 (the aborted run must not count)", st.Executions)
	}
	if st.Running != 0 || st.Waiting != 0 {
		t.Errorf("pool not quiescent after cancellation: running %d waiting %d", st.Running, st.Waiting)
	}
}

// TestSaturation503 pins the back-pressure contract: submissions beyond
// workers+backlog are shed with 503 and a Retry-After hint.
func TestSaturation503(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, Backlog: -1}) // backlog clamps to 0
	gate := make(chan struct{})
	s.runStarted = func(string) { <-gate }
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()

	aDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/run", strings.NewReader(runBody(t, KindVNAsm, "vn", storeAsm(7), nil))))
		aDone <- rr
	}()
	waitFor(t, "job A running", func() bool { return s.Stats().Running == 1 })

	// B (a distinct key, so it cannot coalesce with A) occupies the one
	// permitted waiter slot...
	bDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/run", strings.NewReader(runBody(t, KindVNAsm, "vn", storeAsm(8), nil))))
		bDone <- rr
	}()
	waitFor(t, "job B waiting", func() bool { return s.Stats().Waiting >= 1 })

	// ...so C must be shed immediately.
	rrC := doJSON(t, s, "POST", "/v1/run", runBody(t, KindVNAsm, "vn", storeAsm(9), nil))
	if rrC.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated submission status = %d, want 503: %s", rrC.Code, rrC.Body)
	}
	if rrC.Header().Get("Retry-After") == "" {
		t.Error("503 response is missing Retry-After")
	}

	close(gate)
	for name, ch := range map[string]chan *httptest.ResponseRecorder{"A": aDone, "B": bDone} {
		select {
		case rr := <-ch:
			if rr.Code != http.StatusOK {
				t.Errorf("job %s status = %d, want 200: %s", name, rr.Code, rr.Body)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s never finished after the gate opened", name)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/jobs", runBody(t, KindVNAsm, "vn", storeAsm(7), nil))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", rr.Code, rr.Body)
	}
	var sub struct{ ID, Key string }
	if err := json.Unmarshal(rr.Body.Bytes(), &sub); err != nil || sub.ID == "" || sub.Key == "" {
		t.Fatalf("submit body %q: %v", rr.Body, err)
	}
	if got := rr.Header().Get("Location"); got != "/v1/jobs/"+sub.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", got, sub.ID)
	}

	var job asyncJob
	waitFor(t, "async job completion", func() bool {
		poll := doJSON(t, s, "GET", "/v1/jobs/"+sub.ID, "")
		if poll.Code != http.StatusOK {
			t.Fatalf("poll status = %d: %s", poll.Code, poll.Body)
		}
		if err := json.Unmarshal(poll.Body.Bytes(), &job); err != nil {
			t.Fatalf("poll body %q: %v", poll.Body, err)
		}
		return job.State == "done" || job.State == "error"
	})
	if job.State != "done" || job.Key != sub.Key {
		t.Fatalf("job = %+v, want done with key %s", job, sub.Key)
	}
	res := decodeResult(t, job.Result)
	if res.Result == nil || *res.Result != 7 {
		t.Errorf("async result = %v, want 7", res.Result)
	}

	fetched := doJSON(t, s, "GET", "/v1/results/"+sub.Key, "")
	if fetched.Code != http.StatusOK {
		t.Fatalf("results fetch status = %d: %s", fetched.Code, fetched.Body)
	}
	if got := decodeResult(t, fetched.Body.Bytes()); got.Result == nil || *got.Result != 7 {
		t.Errorf("fetched result = %v, want 7", got.Result)
	}

	if rr := doJSON(t, s, "GET", "/v1/jobs/j-999", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", rr.Code)
	}
	if rr := doJSON(t, s, "GET", "/v1/results/deadbeef", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown result status = %d, want 404", rr.Code)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s := newTestServer(t, Options{Workers: 3})
	if rr := doJSON(t, s, "GET", "/v1/healthz", ""); rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"ok"`) {
		t.Errorf("healthz = %d %q", rr.Code, rr.Body)
	}
	rr := doJSON(t, s, "GET", "/v1/stats", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rr.Code)
	}
	var st ServerStats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body %q: %v", rr.Body, err)
	}
	if st.Workers != 3 || st.CodeVersion != s.CodeVersion() {
		t.Errorf("stats = %+v, want 3 workers and code version %q", st, s.CodeVersion())
	}
}

// waitFor polls cond until it holds or a deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
