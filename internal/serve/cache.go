package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// Cache is the content-addressed result store: canonical job key →
// encoded result bytes, bounded by entry count with LRU eviction.
//
// Every entry carries the SHA-256 of its body, verified on every Get: a
// corrupted entry (bit rot, a bug scribbling over a shared slice) is
// detected, counted, and evicted rather than served. Serving a wrong
// byte would be worse here than in most caches — the repository's whole
// testing story rests on results being exactly reproducible, so a cache
// that silently decayed would forge "reproducible" numbers.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent

	hits, misses, evictions, corruptions uint64
}

type cacheEntry struct {
	key  string
	body []byte
	sum  [sha256.Size]byte
}

// NewCache bounds the store at maxEntries (minimum 1).
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{max: maxEntries, entries: make(map[string]*list.Element), lru: list.New()}
}

// Get returns the stored body for key. The returned slice is shared and
// must be treated as read-only. A checksum mismatch evicts the entry
// and reports a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if sha256.Sum256(e.body) != e.sum {
		c.corruptions++
		c.misses++
		c.removeLocked(el)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.body, true
}

// Put stores a copy of body under key, evicting the least-recently-used
// entry when full. Re-putting an existing key refreshes it (the bodies
// are necessarily identical — keys are content addresses — but a
// refresh heals a corrupted-and-evicted slot).
func (c *Cache) Put(key string, body []byte) {
	e := &cacheEntry{key: key, body: append([]byte(nil), body...)}
	e.sum = sha256.Sum256(e.body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.max {
		c.evictions++
		c.removeLocked(c.lru.Back())
	}
	c.entries[key] = c.lru.PushFront(e)
}

func (c *Cache) removeLocked(el *list.Element) {
	delete(c.entries, el.Value.(*cacheEntry).key)
	c.lru.Remove(el)
}

// Len reports the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is a point-in-time accounting snapshot.
type CacheStats struct {
	Entries     int    `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Corruptions uint64 `json:"corruptions"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     c.lru.Len(),
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Corruptions: c.corruptions,
	}
}

// corrupt flips a bit in a stored entry's body without touching its
// checksum — the harness-teeth hook the cache-integrity tests use to
// prove corruption is detected and evicted, never served.
func (c *Cache) corrupt(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*cacheEntry)
	if len(e.body) == 0 {
		return false
	}
	e.body[len(e.body)/2] ^= 0x40
	return true
}
