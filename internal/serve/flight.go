package serve

import "sync"

// flightGroup coalesces concurrent identical submissions: the first
// caller for a key becomes the leader and runs the job; callers
// arriving while it runs become followers and share the leader's
// result without executing anything. Coalescing is sound for the same
// reason the cache is exact — identical specs have exactly one possible
// result — and it is what keeps a thundering herd of one viral program
// from occupying every worker slot with redundant simulations.
//
// Unlike the cache, a flight entry lives only while its execution is in
// progress; completed results are the cache's job.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
	// followers counts callers that joined this call; the coalescing
	// tests use it to hold an execution open until every concurrent
	// submitter has provably joined.
	followers int
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call's result. It reports whether this
// caller was the leader (ran fn itself); a follower whose own context
// ends while waiting abandons the wait via cancel returning a non-nil
// error. The leader's error — including the leader's own cancellation —
// is shared with every follower; the server retries follower-side on
// leader cancellation, promoting one follower to leader.
func (g *flightGroup) do(key string, cancel <-chan struct{}, cancelErr func() error, fn func() ([]byte, error)) (body []byte, err error, leader bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.followers++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.body, c.err, false
		case <-cancel:
			return nil, cancelErr(), false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, c.err, true
}

// inFlight reports whether key currently has a running execution.
func (g *flightGroup) inFlight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.calls[key]
	return ok
}

// followersOf reports how many callers have joined key's in-flight
// call (0 when none is in flight).
func (g *flightGroup) followersOf(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.followers
	}
	return 0
}
