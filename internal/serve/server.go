package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/sweep"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds concurrent simulations (default 2); Backlog bounds
	// submitters waiting for a worker slot (default 64). A submission
	// beyond both is shed with 503 rather than queued without limit.
	Workers int
	Backlog int
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// Timeout is the per-request simulation budget (default 30s); a job
	// that exceeds it is cut off at the next engine slice with 504.
	Timeout time.Duration
	// MaxBody caps request bodies (default MaxProgramBytes + 4 KiB);
	// larger submissions get 413.
	MaxBody int64
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.Backlog == 0 {
		o.Backlog = 64
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 4096
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxBody <= 0 {
		o.MaxBody = MaxProgramBytes + 4<<10
	}
	return o
}

// Server is the simulation service: validation, canonical keying, the
// result cache, request coalescing, and the bounded worker-pool job
// queue, behind an HTTP/JSON API (see Handler for the routes).
type Server struct {
	opts        Options
	pool        *sweep.Pool
	cache       *Cache
	flight      flightGroup
	mux         *http.ServeMux
	codeVersion string

	// baseCtx governs async (queued) jobs, which outlive their
	// submitting request; Close cancels it.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	executions atomic.Uint64
	coalesced  atomic.Uint64

	jobsMu  sync.Mutex
	jobs    map[string]*asyncJob
	nextJob int

	// runStarted, when non-nil, runs at execution start — after the
	// worker slot is acquired, before the engine turns. Test hook: it
	// lets the coalescing and cancellation tests hold an execution open
	// deterministically instead of racing against simulation speed.
	runStarted func(key string)
}

// New builds a Server. Call Close when done to cancel queued async jobs
// and drain the worker pool.
func New(opts Options) *Server {
	s := &Server{
		opts:        opts.withDefaults(),
		codeVersion: buildinfo.CodeVersion(),
		jobs:        make(map[string]*asyncJob),
	}
	s.pool = sweep.NewPool(s.opts.Workers, s.opts.Backlog)
	s.cache = NewCache(s.opts.CacheEntries)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// Handler returns the API:
//
//	POST /v1/run           submit a job and wait for its result
//	POST /v1/jobs          submit a job asynchronously (202 + id)
//	GET  /v1/jobs/{id}     poll an async job
//	GET  /v1/results/{key} fetch a cached result by canonical key
//	GET  /v1/stats         queue, cache, and coalescing counters
//	GET  /v1/healthz       liveness
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (stats, tests).
func (s *Server) Cache() *Cache { return s.cache }

// CodeVersion is the stamp baked into every cache key and result.
func (s *Server) CodeVersion() string { return s.codeVersion }

// Close stops the server's compute side: queued async jobs are canceled
// at their next engine slice, new pool submissions are rejected, and
// Close blocks until running jobs finish. Shut the http.Server down
// first so no request-driven job is still being submitted.
func (s *Server) Close() {
	s.baseCancel()
	s.pool.Close()
	s.pool.Drain()
}

// ServerStats is the /v1/stats payload.
type ServerStats struct {
	CodeVersion string     `json:"code_version"`
	Executions  uint64     `json:"executions"`
	Coalesced   uint64     `json:"coalesced"`
	Cache       CacheStats `json:"cache"`
	Workers     int        `json:"workers"`
	Running     int        `json:"running"`
	Waiting     int        `json:"waiting"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		CodeVersion: s.codeVersion,
		Executions:  s.executions.Load(),
		Coalesced:   s.coalesced.Load(),
		Cache:       s.cache.Stats(),
		Workers:     s.pool.Workers(),
		Running:     s.pool.Running(),
		Waiting:     s.pool.Waiting(),
	}
}

// execute resolves one job end to end: cache, then coalesced execution
// through the worker pool. source reports how the bytes were produced:
// "hit", "miss" (this caller executed), or "coalesced" (another
// caller's execution was shared).
func (s *Server) execute(ctx context.Context, spec *JobSpec, key string) (body []byte, source string, err error) {
	for {
		if b, ok := s.cache.Get(key); ok {
			return b, "hit", nil
		}
		body, err, leader := s.flight.do(key, ctx.Done(), func() error { return ctx.Err() }, func() ([]byte, error) {
			var out []byte
			var runErr error
			if perr := s.pool.Do(ctx, func() {
				if s.runStarted != nil {
					s.runStarted(key)
				}
				res, rerr := runJob(ctx, spec)
				if rerr != nil {
					runErr = rerr
					return
				}
				res.Key, res.CodeVersion = key, s.codeVersion
				b, merr := json.Marshal(res)
				if merr != nil {
					runErr = merr
					return
				}
				b = append(b, '\n')
				s.cache.Put(key, b)
				s.executions.Add(1)
				out = b
			}); perr != nil {
				return nil, perr
			}
			return out, runErr
		})
		if !leader {
			if err == nil {
				s.coalesced.Add(1)
				return body, "coalesced", nil
			}
			// The leader's client vanished mid-run and took the
			// execution down with it. This caller is still live, so
			// retry: one follower is promoted to leader and the rest
			// coalesce onto it.
			if errors.Is(err, context.Canceled) && ctx.Err() == nil {
				continue
			}
			return nil, "", err
		}
		if err != nil {
			return nil, "", err
		}
		return body, "miss", nil
	}
}

// decodeSpec reads and validates the request body into a normalized
// spec. Unknown fields are rejected — a typoed config knob must not
// silently run (and cache) the default configuration.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (*JobSpec, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.DisallowUnknownFields()
	spec := &JobSpec{}
	if err := dec.Decode(spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, errf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, errf(http.StatusBadRequest, "decode request: %v", err)
	}
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	return spec, nil
}

// statusClientClosedRequest is nginx's conventional status for a client
// that disconnected; nothing reads the response, but mapping it keeps
// cancellations distinct from server faults in logs and tests.
const statusClientClosedRequest = 499

// writeErr maps an error to its one HTTP status and writes the JSON
// error body.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	msg := err.Error()
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		status = ae.Status
	case errors.Is(err, sweep.ErrSaturated):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		msg = "job queue saturated; retry later"
	case errors.Is(err, sweep.ErrClosed):
		status = http.StatusServiceUnavailable
		msg = "server is shutting down"
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		msg = "simulation exceeded the per-request timeout"
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%s}\n", mustJSONString(msg))
}

func mustJSONString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"internal error"`
	}
	return string(b)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, err := s.decodeSpec(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	key := spec.Key(s.codeVersion)
	start := time.Now()
	body, source, err := s.execute(ctx, spec, key)
	if err != nil {
		writeErr(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", source)
	h.Set("X-Key", key)
	h.Set("X-Wall-Ms", strconv.FormatFloat(float64(time.Since(start).Microseconds())/1e3, 'f', 3, 64))
	w.Write(body)
}

// asyncJob is one queued submission's lifecycle record.
type asyncJob struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"` // queued | running | done | error
	Error string `json:"error,omitempty"`
	// Source mirrors X-Cache for the completing execution.
	Source string          `json:"source,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := s.decodeSpec(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	key := spec.Key(s.codeVersion)
	s.jobsMu.Lock()
	s.nextJob++
	job := &asyncJob{ID: fmt.Sprintf("j-%d", s.nextJob), Key: key, State: "queued"}
	s.jobs[job.ID] = job
	s.jobsMu.Unlock()

	go func() {
		ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.Timeout)
		defer cancel()
		s.setJob(job.ID, func(j *asyncJob) { j.State = "running" })
		body, source, err := s.execute(ctx, spec, key)
		s.setJob(job.ID, func(j *asyncJob) {
			if err != nil {
				j.State, j.Error = "error", err.Error()
				return
			}
			j.State, j.Source, j.Result = "done", source, json.RawMessage(body)
		})
	}()

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"id\":%q,\"key\":%q}\n", job.ID, key)
}

func (s *Server) setJob(id string, mut func(*asyncJob)) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if j, ok := s.jobs[id]; ok {
		mut(j)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var snap asyncJob
	if ok {
		snap = *j
	}
	s.jobsMu.Unlock()
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := s.cache.Get(key)
	if !ok {
		writeErr(w, errf(http.StatusNotFound, "no cached result for key %q", key))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", "hit")
	h.Set("X-Key", key)
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}
