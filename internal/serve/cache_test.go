package serve

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/conformance"
)

// normKey normalizes a spec and returns its canonical key under a fixed
// code version.
func normKey(t *testing.T, spec *JobSpec) string {
	t.Helper()
	if err := spec.normalize(); err != nil {
		t.Fatalf("normalize(%+v): %v", spec, err)
	}
	return spec.Key("test-code")
}

// TestKeyDistinguishesProgramForms: the same generated workload expressed
// as MiniID and as vn assembly must hash to different keys — they are
// different programs for different machines, even though the differential
// harness proves they compute the same answer.
func TestKeyDistinguishesProgramForms(t *testing.T) {
	w := conformance.Generate(5)
	idKey := normKey(t, &JobSpec{Kind: KindMiniID, Machine: "ttda", Program: w.IDSource(), Args: []int64{w.N}})
	asmKey := normKey(t, &JobSpec{Kind: KindVNAsm, Machine: "vn", Program: w.ASMSource()})
	if idKey == asmKey {
		t.Fatalf("minid and vnasm renderings share key %s", idKey)
	}
}

// TestKeyDistinguishesConfig: every meaningful field — shards, epoch
// window, compiled mode, machine knobs, args, program, code version —
// must change the key, while inapplicable knobs and explicit defaults
// must not.
func TestKeyDistinguishesConfig(t *testing.T) {
	ttda := func(c *Config) *JobSpec {
		return &JobSpec{Kind: KindMiniID, Machine: "ttda", Program: doubleID, Args: []int64{21}, Config: c}
	}
	variants := map[string]*JobSpec{
		"base":         ttda(nil),
		"shards":       ttda(&Config{Shards: 2}),
		"epoch window": ttda(&Config{Shards: 2, EpochWindow: 8}),
		"compiled":     ttda(&Config{Compiled: true}),
		"pes":          ttda(&Config{PEs: 8}),
		"net latency":  ttda(&Config{NetLatency: 5}),
		"max cycles":   ttda(&Config{MaxCycles: 1_000_000}),
		"args":         {Kind: KindMiniID, Machine: "ttda", Program: doubleID, Args: []int64{22}},
		"program":      {Kind: KindMiniID, Machine: "ttda", Program: "def main(n) = n + 2;", Args: []int64{21}},
		"machine":      {Kind: KindMiniID, Machine: "interp", Program: doubleID, Args: []int64{21}},
		"vn contexts":  {Kind: KindVNAsm, Machine: "vn", Program: storeAsm(7), Config: &Config{Contexts: 2}},
		"vn latency":   {Kind: KindVNAsm, Machine: "vn", Program: storeAsm(7), Config: &Config{MemLatency: 8}},
		"combining":    {Kind: KindVNAsm, Machine: "ultra", Program: storeAsm(7), Config: &Config{Combining: true}},
		"experiment":   {Experiment: "E3"},
	}
	seen := map[string]string{}
	for name, spec := range variants {
		key := normKey(t, spec)
		if prev, dup := seen[key]; dup {
			t.Errorf("variants %q and %q collide on key %s", name, prev, key)
		}
		seen[key] = name
	}

	// Explicitly writing the defaults must address the same entry as
	// omitting them entirely.
	if a, b := normKey(t, ttda(nil)), normKey(t, ttda(&Config{PEs: 4, NetLatency: 2, MaxCycles: 50_000_000})); a != b {
		t.Errorf("explicit defaults key %s != omitted-config key %s", b, a)
	}
	// A knob the chosen machine ignores is zeroed away and must not
	// fragment the cache.
	vn := normKey(t, &JobSpec{Kind: KindVNAsm, Machine: "vn", Program: storeAsm(7)})
	vnWithPEs := normKey(t, &JobSpec{Kind: KindVNAsm, Machine: "vn", Program: storeAsm(7), Config: &Config{PEs: 9, Combining: true}})
	if vn != vnWithPEs {
		t.Errorf("inapplicable knobs changed the key: %s vs %s", vn, vnWithPEs)
	}
	// The code version stamp keys the cache across simulator revisions.
	spec := ttda(nil)
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	if spec.Key("rev-a") == spec.Key("rev-b") {
		t.Error("code version does not participate in the key")
	}
}

// TestHitByteIdenticalToColdRun: a cache hit must be byte-for-byte the
// cold run's response — and a cold run on a fresh server must reproduce
// it exactly, which is the determinism claim the cache design rests on.
func TestHitByteIdenticalToColdRun(t *testing.T) {
	w := conformance.Generate(11)
	body := runBody(t, KindMiniID, "ttda", w.IDSource(), []int64{w.N})

	s1 := newTestServer(t, Options{})
	cold := doJSON(t, s1, "POST", "/v1/run", body)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold run status %d: %s", cold.Code, cold.Body)
	}
	hit := doJSON(t, s1, "POST", "/v1/run", body)
	if hit.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second run was not a hit (X-Cache %q)", hit.Header().Get("X-Cache"))
	}
	if hit.Body.String() != cold.Body.String() {
		t.Errorf("hit response differs from cold response:\ncold: %s\nhit:  %s", cold.Body, hit.Body)
	}

	s2 := newTestServer(t, Options{})
	cold2 := doJSON(t, s2, "POST", "/v1/run", body)
	if cold2.Body.String() != cold.Body.String() {
		t.Errorf("fresh-server cold run is not byte-identical:\n%s\nvs\n%s", cold.Body, cold2.Body)
	}
}

// TestCorruptionDetectedNotServed is the harness-teeth test for cache
// integrity: a corrupted entry must be detected on read, evicted, and
// re-executed — never served.
func TestCorruptionDetectedNotServed(t *testing.T) {
	s := newTestServer(t, Options{})
	body := runBody(t, KindVNAsm, "vn", storeAsm(7), nil)
	cold := doJSON(t, s, "POST", "/v1/run", body)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold run status %d: %s", cold.Code, cold.Body)
	}
	key := cold.Header().Get("X-Key")

	// Sanity: uncorrupted, the entry is served.
	if rr := doJSON(t, s, "GET", "/v1/results/"+key, ""); rr.Code != http.StatusOK {
		t.Fatalf("pre-corruption fetch status %d", rr.Code)
	}

	if !s.Cache().corrupt(key) {
		t.Fatalf("corrupt(%s) found no entry", key)
	}
	rr := doJSON(t, s, "GET", "/v1/results/"+key, "")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("corrupted entry served with status %d: %s", rr.Code, rr.Body)
	}
	st := s.Cache().Stats()
	if st.Corruptions != 1 {
		t.Errorf("corruptions = %d, want 1", st.Corruptions)
	}
	if s.Cache().Len() != 0 {
		t.Errorf("corrupted entry was not evicted (len %d)", s.Cache().Len())
	}

	// The next submission re-executes and heals the entry with the exact
	// original bytes.
	redo := doJSON(t, s, "POST", "/v1/run", body)
	if got := redo.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("post-corruption run X-Cache = %q, want miss (re-execution)", got)
	}
	if redo.Body.String() != cold.Body.String() {
		t.Errorf("re-execution differs from original cold run")
	}
	if rr := doJSON(t, s, "GET", "/v1/results/"+key, ""); rr.Code != http.StatusOK || rr.Body.String() != cold.Body.String() {
		t.Errorf("healed entry fetch = %d, body match %t", rr.Code, rr.Body.String() == cold.Body.String())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 survived eviction")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Error("k2 missing")
	}
	// Touching k1 makes k2 the LRU victim for the next insert.
	if _, ok := c.Get("k1"); !ok {
		t.Error("k1 missing")
	}
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 survived eviction despite being LRU")
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 evictions and 2 entries", st)
	}
}
