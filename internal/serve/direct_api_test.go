package serve

import (
	"net/http"
	"testing"
)

// TestRunDirect pins the API contract for machine "direct": result-only
// success shape (results and a firing count, but no cycles and no engine
// counters — the backend has no cycle model to report), cache stamping,
// and an exact byte replay on the repeat request.
func TestRunDirect(t *testing.T) {
	s := newTestServer(t, Options{})
	body := runBody(t, KindMiniID, "direct", doubleID, []int64{21})
	rr := doJSON(t, s, "POST", "/v1/run", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	res := decodeResult(t, rr.Body.Bytes())
	if len(res.Results) != 1 || res.Results[0] != "42" {
		t.Errorf("results = %v, want [42]", res.Results)
	}
	if res.Stats["fired"] == 0 {
		t.Errorf("stats = %v, want a nonzero firing count", res.Stats)
	}
	if res.Cycles != 0 || res.Engine != nil {
		t.Errorf("direct result reports cycle-model observables it cannot have: cycles=%d engine=%v", res.Cycles, res.Engine)
	}
	if res.Key == "" || res.CodeVersion != s.CodeVersion() {
		t.Errorf("key %q / code_version %q not stamped", res.Key, res.CodeVersion)
	}

	again := doJSON(t, s, "POST", "/v1/run", body)
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("repeat: X-Cache = %q, want hit", got)
	}
	if again.Body.String() != rr.Body.String() {
		t.Errorf("repeat: hit body differs from cold body")
	}
}

// TestDirectKeyDiscriminatesFromInterp: the same program and args on the
// direct backend and the reference interpreter must address different
// cache entries — the two backends agree on every result bit, but their
// stats differ and a cached entry must replay the backend that ran.
func TestDirectKeyDiscriminatesFromInterp(t *testing.T) {
	direct := normKey(t, &JobSpec{Kind: KindMiniID, Machine: "direct", Program: doubleID, Args: []int64{21}})
	interp := normKey(t, &JobSpec{Kind: KindMiniID, Machine: "interp", Program: doubleID, Args: []int64{21}})
	if direct == interp {
		t.Fatalf("direct and interp share cache key %s", direct)
	}
}

// TestDirectNormalizationZeroesCycleKnobs: machine "direct" has no cycle
// model, so every cycle-model knob is inapplicable and must be zeroed
// away exactly like the interpreter's — two specs differing only in
// knobs the backend ignores share one cache entry. The same knobs on the
// TTDA remain meaningful (epoch_window without shards is still 400
// there), pinning that the zeroing is per-machine, not global.
func TestDirectNormalizationZeroesCycleKnobs(t *testing.T) {
	bare := normKey(t, &JobSpec{Kind: KindMiniID, Machine: "direct", Program: doubleID, Args: []int64{21}})
	knobbed := normKey(t, &JobSpec{
		Kind: KindMiniID, Machine: "direct", Program: doubleID, Args: []int64{21},
		Config: &Config{PEs: 9, NetLatency: 5, Shards: 65, EpochWindow: 8, Compiled: true, Contexts: 3, MemLatency: 7, Combining: true},
	})
	if bare != knobbed {
		t.Fatalf("inapplicable cycle-model knobs fragmented the cache: %s vs %s", bare, knobbed)
	}

	// MaxCycles stays meaningful: it bounds firings on this backend.
	bounded := normKey(t, &JobSpec{
		Kind: KindMiniID, Machine: "direct", Program: doubleID, Args: []int64{21},
		Config: &Config{MaxCycles: 1_000_000},
	})
	if bounded == bare {
		t.Fatal("max_cycles does not participate in the direct cache key")
	}

	s := newTestServer(t, Options{})
	ttda := `{"kind":"minid","machine":"ttda","program":"def main(n) = n;","config":{"epoch_window":8}}`
	if rr := doJSON(t, s, "POST", "/v1/run", ttda); rr.Code != http.StatusBadRequest {
		t.Fatalf("ttda epoch_window without shards: status %d, want 400: %s", rr.Code, rr.Body)
	}
	direct := `{"kind":"minid","machine":"direct","program":"def main(n) = n;","args":[3],"config":{"epoch_window":8}}`
	if rr := doJSON(t, s, "POST", "/v1/run", direct); rr.Code != http.StatusOK {
		t.Fatalf("direct with zeroed epoch_window: status %d, want 200: %s", rr.Code, rr.Body)
	}
}

// TestDirectRunFailures422: dataflow faults and firing-budget exhaustion
// on the direct backend are unprocessable submissions, same as every
// other machine.
func TestDirectRunFailures422(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
	}{
		{"division by zero", runBody(t, KindMiniID, "direct", "def main(n) = 1 / (n - n);", []int64{3})},
		{"firing budget exhausted", specBody(t, &JobSpec{
			Kind: KindMiniID, Machine: "direct",
			Program: "def f(x) = f(x + 1);\ndef main(n) = f(n);", Args: []int64{1},
			Config: &Config{MaxCycles: 100_000},
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doJSON(t, s, "POST", "/v1/run", tc.body)
			if rr.Code != http.StatusUnprocessableEntity {
				t.Fatalf("status = %d, want 422: %s", rr.Code, rr.Body)
			}
		})
	}
}
