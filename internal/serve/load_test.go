package serve

import "testing"

// TestRunLoadSmoke runs the load generator end to end at miniature
// scale: a self-hosted server, a few generated programs, full repeat
// traffic. It pins the accounting rather than the latency numbers —
// repeat traffic over an unevictable cache must hit every time.
func TestRunLoadSmoke(t *testing.T) {
	rep, err := RunLoad(LoadOptions{
		Self:        Options{Workers: 2, Backlog: 32},
		Programs:    4,
		Repeats:     2,
		Concurrency: 4,
		Machine:     "vn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("report has %d errors: %+v", rep.Errors, rep)
	}
	if want := 4 * (1 + 2); rep.Requests != want {
		t.Errorf("requests = %d, want %d", rep.Requests, want)
	}
	if rep.RepeatHitRate != 1.0 {
		t.Errorf("repeat hit rate = %v, want 1.0 (cache leaked)", rep.RepeatHitRate)
	}
	if rep.Cold != 4 {
		t.Errorf("cold requests = %d, want 4", rep.Cold)
	}
	if rep.Server.Executions != 4 {
		t.Errorf("server executions = %d, want 4", rep.Server.Executions)
	}
	if rep.ColdP99Ms <= 0 || rep.HitP99Ms <= 0 || rep.ThroughputRPS <= 0 {
		t.Errorf("latency/throughput not measured: %+v", rep)
	}
}
