package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"repro/internal/conformance"
	"repro/internal/sweep"
)

// LoadOptions shapes a load run against the serve API.
type LoadOptions struct {
	// URL targets a running server; empty self-hosts one on loopback
	// with Self's options for the duration of the run.
	URL  string
	Self Options
	// Programs is the distinct-program count; each is a seeded
	// conformance-generator workload, so the traffic is the same
	// program population the differential test harness runs.
	Programs int
	// Repeats is how many times the program set is replayed after the
	// cold pass — the repeat traffic the cache amortizes.
	Repeats int
	// Concurrency is the client-side worker count.
	Concurrency int
	// Machine receives the traffic (default ttda).
	Machine string
	// Config, when non-nil, is attached to every generated spec — e.g. a
	// larger PE array or a sharded kernel, which makes each cold
	// simulation proportionally heavier while leaving the hit path
	// untouched.
	Config *Config
	// ArgScale multiplies each MiniID program's entry argument (default
	// 1). Generated workloads iterate 2..10 times — quick enough for the
	// differential harness, but a serving benchmark wants cold requests
	// that cost real simulation time; scaling the argument lengthens the
	// run without changing the program text. Ignored for vn-assembly
	// machines, whose iteration count is baked into the source.
	ArgScale int64
	// Timeout bounds each request.
	Timeout time.Duration
}

// LoadReport is the measured outcome. Latency is reported separately
// for cold requests (the simulation actually ran) and hits (served from
// the content-addressed cache); the cold-p99 / hit-p99 ratio is the
// headline amortization number.
type LoadReport struct {
	Machine     string  `json:"machine"`
	Config      *Config `json:"config,omitempty"`
	ArgScale    int64   `json:"arg_scale,omitempty"`
	Programs    int     `json:"programs"`
	Repeats     int     `json:"repeats"`
	Concurrency int     `json:"concurrency"`

	Requests  int `json:"requests"`
	Errors    int `json:"errors"`
	Cold      int `json:"cold_requests"`
	Hits      int `json:"hit_requests"`
	Coalesced int `json:"coalesced_requests"`

	// HitRate is hits over all requests; RepeatHitRate restricts the
	// denominator to the repeat passes, where every request has been
	// seen before and anything under 1.0 means the cache leaked.
	HitRate       float64 `json:"hit_rate"`
	RepeatHitRate float64 `json:"repeat_hit_rate"`

	ColdP50Ms float64 `json:"cold_p50_ms"`
	ColdP99Ms float64 `json:"cold_p99_ms"`
	HitP50Ms  float64 `json:"hit_p50_ms"`
	HitP99Ms  float64 `json:"hit_p99_ms"`
	// ColdOverHitP99 is ColdP99Ms / HitP99Ms.
	ColdOverHitP99 float64 `json:"cold_p99_over_hit_p99"`

	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Server is the target's /v1/stats snapshot after the run.
	Server ServerStats `json:"server"`
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Programs < 1 {
		o.Programs = 32
	}
	if o.Repeats < 1 {
		o.Repeats = 9
	}
	if o.Concurrency < 1 {
		o.Concurrency = 8
	}
	if o.Machine == "" {
		o.Machine = "ttda"
	}
	if o.ArgScale < 1 {
		o.ArgScale = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// loadSpec renders workload seed i as a request body for machine.
func loadSpec(machine string, cfg *Config, argScale int64, seed uint64) ([]byte, error) {
	w := conformance.Generate(seed)
	spec := &JobSpec{Machine: machine}
	if cfg != nil {
		c := *cfg
		spec.Config = &c
	}
	if machineKind[machine] == KindMiniID {
		spec.Kind, spec.Program, spec.Args = KindMiniID, w.IDSource(), []int64{w.N * argScale}
	} else {
		spec.Kind, spec.Program = KindVNAsm, w.ASMSource()
	}
	return json.Marshal(spec)
}

// sample is one request's observation.
type sample struct {
	ms     float64
	source string // hit | miss | coalesced
	err    error
}

// RunLoad replays Programs distinct conformance-generator programs
// against the API — one cold pass, then Repeats replay passes — with
// Concurrency client workers (the client fan-out itself rides on
// sweep.Run), and reports latency percentiles, throughput, and cache
// effectiveness.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	url := opts.URL
	if url == "" {
		srv := New(opts.Self)
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		url = "http://" + ln.Addr().String()
	}

	bodies := make([][]byte, opts.Programs)
	for i := range bodies {
		b, err := loadSpec(opts.Machine, opts.Config, opts.ArgScale, uint64(i))
		if err != nil {
			return nil, fmt.Errorf("render program %d: %v", i, err)
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: opts.Timeout}
	fire := func(body []byte) sample {
		start := time.Now()
		resp, err := client.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{err: err}
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		ms := float64(time.Since(start).Microseconds()) / 1e3
		if resp.StatusCode != http.StatusOK {
			return sample{ms: ms, err: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))}
		}
		return sample{ms: ms, source: resp.Header.Get("X-Cache")}
	}

	rep := &LoadReport{
		Machine:     opts.Machine,
		Config:      opts.Config,
		ArgScale:    opts.ArgScale,
		Programs:    opts.Programs,
		Repeats:     opts.Repeats,
		Concurrency: opts.Concurrency,
	}
	start := time.Now()

	// Cold pass: every program once. Concurrent distinct submissions
	// never coalesce, so this measures real simulation latency.
	coldSamples, err := sweep.Run(bodies, func(_ sweep.Env, body []byte) (sample, error) {
		return fire(body), nil
	}, sweep.Options{Workers: opts.Concurrency})
	if err != nil {
		return nil, err
	}

	// Repeat passes: the same population replayed Repeats times. The
	// request order interleaves programs so concurrent workers pull
	// different keys (pure cache traffic, not a coalescing storm).
	repeats := make([][]byte, 0, opts.Repeats*opts.Programs)
	for r := 0; r < opts.Repeats; r++ {
		repeats = append(repeats, bodies...)
	}
	repeatSamples, err := sweep.Run(repeats, func(_ sweep.Env, body []byte) (sample, error) {
		return fire(body), nil
	}, sweep.Options{Workers: opts.Concurrency})
	if err != nil {
		return nil, err
	}
	rep.WallMs = float64(time.Since(start).Microseconds()) / 1e3

	var coldMs, hitMs []float64
	var repeatHits, repeatTotal int
	tally := func(samples []sample, repeat bool) {
		for _, sm := range samples {
			rep.Requests++
			if sm.err != nil {
				rep.Errors++
				continue
			}
			switch sm.source {
			case "hit":
				rep.Hits++
				hitMs = append(hitMs, sm.ms)
			case "coalesced":
				rep.Coalesced++
			default:
				rep.Cold++
				coldMs = append(coldMs, sm.ms)
			}
			if repeat {
				repeatTotal++
				if sm.source == "hit" {
					repeatHits++
				}
			}
		}
	}
	tally(coldSamples, false)
	tally(repeatSamples, true)

	if rep.Requests > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Requests)
	}
	if repeatTotal > 0 {
		rep.RepeatHitRate = float64(repeatHits) / float64(repeatTotal)
	}
	rep.ColdP50Ms = percentile(coldMs, 0.50)
	rep.ColdP99Ms = percentile(coldMs, 0.99)
	rep.HitP50Ms = percentile(hitMs, 0.50)
	rep.HitP99Ms = percentile(hitMs, 0.99)
	if rep.HitP99Ms > 0 {
		rep.ColdOverHitP99 = rep.ColdP99Ms / rep.HitP99Ms
	}
	if rep.WallMs > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / (rep.WallMs / 1e3)
	}

	if resp, err := client.Get(url + "/v1/stats"); err == nil {
		json.NewDecoder(resp.Body).Decode(&rep.Server)
		resp.Body.Close()
	}
	return rep, nil
}

// percentile returns the p-quantile (0..1) by nearest rank over a copy.
func percentile(ms []float64, p float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	idx := int(p*float64(len(s)-1) + 0.5)
	return s[idx]
}
