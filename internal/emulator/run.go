package emulator

import (
	"fmt"
	"sync"

	"repro/internal/token"
)

// Run executes the program across the whole facility and returns its
// results. A Facility runs one program once; build a new one to run again
// (the loader reloads the real facility the same way).
func (f *Facility) Run(args ...token.Value) ([]token.Value, error) {
	return f.RunPartition(0, args...)
}

// RunPartition executes the program using only the nodes of the given
// partition — the paper's statically partitioned sub-machine. With the
// default single partition this is the whole cube.
func (f *Facility) RunPartition(pid int, args ...token.Value) ([]token.Value, error) {
	f.routeMu.RLock()
	var runNodes []int
	for i, p := range f.part {
		if p == pid {
			runNodes = append(runNodes, i)
		}
	}
	f.routeMu.RUnlock()
	if len(runNodes) == 0 {
		return nil, fmt.Errorf("emulator: partition %d has no nodes", pid)
	}
	f.runNodes = runNodes

	entry := f.prog.Entry()
	if len(args) != len(entry.Entries) {
		return nil, fmt.Errorf("emulator: program %q wants %d arguments, got %d",
			f.prog.Name, len(entry.Entries), len(args))
	}
	if err := f.prog.Validate(); err != nil {
		return nil, err
	}

	// Inject the argument tokens before any node runs.
	for j, v := range args {
		act := token.ActivityName{Context: 0, CodeBlock: uint16(entry.ID), Statement: entry.Entries[j], Initiation: 1}
		t := token.Token{
			Class: token.Normal,
			Tag:   token.Tag{Activity: act},
			NT:    entry.Instr(entry.Entries[j]).NT,
			Port:  0,
			Value: v,
		}
		t.PE = f.homePE(t.Tag)
		f.post(t.PE, message{dst: t.PE, tok: t})
	}

	var wg sync.WaitGroup
	for _, nd := range f.nodes {
		wg.Add(1)
		nd := nd
		go func() {
			defer wg.Done()
			nd.loop()
		}()
	}
	<-f.done

	// Shut the modules down and wait for them.
	for _, nd := range f.nodes {
		nd.mu.Lock()
		nd.stop = true
		nd.mu.Unlock()
		nd.cond.Broadcast()
	}
	wg.Wait()

	f.resMu.Lock()
	err := f.runErr
	results := f.results
	f.resMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := f.checkClean(); err != nil {
		return nil, err
	}
	return results, nil
}

// checkClean distinguishes completion from deadlock after quiescence.
func (f *Facility) checkClean() error {
	stranded, deferred := 0, 0
	for _, nd := range f.nodes {
		stranded += len(nd.waiting)
		for _, c := range nd.cells {
			deferred += len(c.waiters)
		}
	}
	if stranded != 0 {
		return fmt.Errorf("emulator: %d unmatched tokens stranded in waiting sections", stranded)
	}
	if deferred != 0 {
		return fmt.Errorf("emulator: deadlock: %d deferred reads never satisfied", deferred)
	}
	return nil
}

// NodeProcessed returns node i's processed-message count (load balance).
func (f *Facility) NodeProcessed(i int) uint64 { return f.nodes[i].processed }

// NumNodes returns the facility size.
func (f *Facility) NumNodes() int { return f.n }
