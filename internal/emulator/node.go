package emulator

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/token"
)

// loop is one PE+switch module's goroutine: take the next message off the
// switch queue, forward it if it belongs elsewhere, interpret it locally
// otherwise. Exits when the facility finishes.
func (nd *node) loop() {
	for {
		nd.mu.Lock()
		for len(nd.queue) == 0 && !nd.stop {
			nd.cond.Wait()
		}
		if nd.stop {
			nd.mu.Unlock()
			return
		}
		m := nd.queue[0]
		nd.queue = nd.queue[1:]
		nd.mu.Unlock()

		nd.handle(m)
		// the unit is released only after all child messages were posted
		if nd.f.units.Add(-1) == 0 {
			nd.f.finish()
		}
	}
}

// handle forwards or locally processes one message.
func (nd *node) handle(m message) {
	if m.dst != nd.id {
		next := nd.f.nextHop(nd.id, m.dst)
		if next < 0 {
			nd.f.fail(fmt.Errorf("emulator: node %d cannot route to %d (partitioned or disconnected)", nd.id, m.dst))
			return
		}
		m.hops++
		nd.f.Forwarded.Add(1)
		nd.f.Hops.Add(1)
		nd.f.post(next, m)
		return
	}
	nd.processed++
	if m.isReq != nil {
		nd.handleIS(m.isReq)
		return
	}
	nd.deliverToken(m.tok)
}

// handleIS services an I-structure request at the owning node. Cells are
// owned exclusively by this goroutine: presence bits and deferred lists
// need no locks.
func (nd *node) handleIS(r *isRequest) {
	c := nd.cells[r.addr]
	if c == nil {
		c = &cell{}
		nd.cells[r.addr] = c
	}
	if r.write {
		if c.present {
			nd.f.fail(fmt.Errorf("emulator: double write to address %d", r.addr))
			return
		}
		c.present = true
		c.value = r.value
		for _, w := range c.waiters {
			nd.sendValue(w, r.value)
		}
		c.waiters = nil
		return
	}
	if c.present {
		nd.sendValue(r.reply, c.value)
		return
	}
	nd.f.Deferred.Add(1)
	c.waiters = append(c.waiters, r.reply)
}

// sendValue routes a fetched value to its consumer.
func (nd *node) sendValue(rt replyTag, v token.Value) {
	t := token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: rt.activity},
		NT:    rt.nt,
		Port:  rt.port,
		Value: v,
	}
	nd.emit(t)
}

// deliverToken runs the waiting-matching step and fires enabled
// instructions.
func (nd *node) deliverToken(t token.Token) {
	if t.NT <= 1 {
		var vals [2]token.Value
		vals[t.Port] = t.Value
		nd.fire(t.Tag.Activity, vals)
		return
	}
	key := t.Tag.Activity
	p, ok := nd.waiting[key]
	if !ok {
		p = &partial{}
		nd.waiting[key] = p
	}
	if p.have[t.Port] {
		nd.f.fail(fmt.Errorf("emulator: duplicate token at %s port %d", key, t.Port))
		return
	}
	p.vals[t.Port] = t.Value
	p.have[t.Port] = true
	if p.have[0] && p.have[1] {
		delete(nd.waiting, key)
		nd.fire(key, p.vals)
	}
}

// emit injects a token into this node's switch module; it travels hop by
// hop toward its home PE through the routing tables.
func (nd *node) emit(t token.Token) {
	t.PE = nd.f.homePE(t.Tag)
	nd.f.post(nd.id, message{dst: t.PE, tok: t})
}

// sendToDests applies the standard output-section tag transformation.
func (nd *node) sendToDests(act token.ActivityName, dests []graph.Dest, v token.Value, initiation uint32) {
	blk := nd.f.prog.Block(graph.BlockID(act.CodeBlock))
	for _, d := range dests {
		newAct := token.ActivityName{
			Context:    act.Context,
			CodeBlock:  act.CodeBlock,
			Statement:  d.Stmt,
			Initiation: initiation,
		}
		nd.emit(token.Token{
			Class: token.Normal,
			Tag:   token.Tag{Activity: newAct},
			NT:    blk.Instr(d.Stmt).NT,
			Port:  d.Port,
			Value: v,
		})
	}
}

// sendTo emits a fully-addressed token (cross-block transfers).
func (nd *node) sendTo(act token.ActivityName, blkID graph.BlockID, stmt uint16, port uint8, v token.Value) {
	blk := nd.f.prog.Block(blkID)
	nd.emit(token.Token{
		Class: token.Normal,
		Tag:   token.Tag{Activity: act},
		NT:    blk.Instr(stmt).NT,
		Port:  port,
		Value: v,
	})
}

// fire executes one enabled instruction; the case analysis matches the
// reference interpreter exactly.
func (nd *node) fire(act token.ActivityName, vals [2]token.Value) {
	f := nd.f
	f.Fired.Add(1)
	blk := f.prog.Block(graph.BlockID(act.CodeBlock))
	in := blk.Instr(act.Statement)
	if in.HasLiteral {
		vals[in.LiteralPort] = in.Literal
	}
	if in.Op.IsPure() {
		v, err := graph.Eval(in.Op, vals[0], vals[1])
		if err != nil {
			f.fail(fmt.Errorf("emulator: %v at %s %s", err, act, in.Op))
			return
		}
		nd.sendToDests(act, in.Dests, v, act.Initiation)
		return
	}
	switch in.Op {
	case graph.OpSwitch:
		c, err := vals[1].AsBool()
		if err != nil {
			f.fail(fmt.Errorf("emulator: switch control at %s: %v", act, err))
			return
		}
		if c {
			nd.sendToDests(act, in.Dests, vals[0], act.Initiation)
		} else {
			nd.sendToDests(act, in.DestsFalse, vals[0], act.Initiation)
		}
	case graph.OpGetContext:
		f.ctxMu.Lock()
		u := f.nextCtx
		f.nextCtx++
		f.ctxs[u] = &ctxRecord{
			block:       in.Target,
			parent:      act,
			parentBlock: graph.BlockID(act.CodeBlock),
			returnDests: in.ReturnDests,
		}
		f.ctxMu.Unlock()
		nd.sendToDests(act, in.Dests, token.Int(int64(u)), act.Initiation)
	case graph.OpSendArg, graph.OpL:
		h, err := vals[0].AsInt()
		if err != nil {
			f.fail(fmt.Errorf("emulator: %s handle at %s: %v", in.Op, act, err))
			return
		}
		f.ctxMu.Lock()
		rec, ok := f.ctxs[token.Context(h)]
		if ok {
			rec.argsSent++
			f.maybeFreeCtxLocked(token.Context(h), rec)
		}
		f.ctxMu.Unlock()
		if !ok {
			f.fail(fmt.Errorf("emulator: %s at %s: unknown context %d", in.Op, act, h))
			return
		}
		callee := f.prog.Block(rec.block)
		newAct := token.ActivityName{
			Context:    token.Context(h),
			CodeBlock:  uint16(rec.block),
			Statement:  callee.Entries[in.ArgIndex],
			Initiation: 1,
		}
		nd.sendTo(newAct, rec.block, newAct.Statement, 0, vals[1])
	case graph.OpD:
		nd.sendToDests(act, in.Dests, vals[0], act.Initiation+1)
	case graph.OpDInv:
		nd.sendToDests(act, in.Dests, vals[0], 1)
	case graph.OpReturn, graph.OpLInv:
		if act.Context == 0 {
			f.resMu.Lock()
			f.results = append(f.results, vals[0])
			f.resMu.Unlock()
			return
		}
		f.ctxMu.Lock()
		rec, ok := f.ctxs[act.Context]
		if ok {
			rec.returned = true
			f.maybeFreeCtxLocked(act.Context, rec)
		}
		f.ctxMu.Unlock()
		if !ok {
			f.fail(fmt.Errorf("emulator: %s at %s: unknown context", in.Op, act))
			return
		}
		for _, d := range rec.returnDests {
			newAct := token.ActivityName{
				Context:    rec.parent.Context,
				CodeBlock:  uint16(rec.parentBlock),
				Statement:  d.Stmt,
				Initiation: rec.parent.Initiation,
			}
			nd.sendTo(newAct, rec.parentBlock, d.Stmt, d.Port, vals[0])
		}
	case graph.OpAllocate:
		n, err := vals[0].AsInt()
		if err != nil || n < 0 {
			f.fail(fmt.Errorf("emulator: allocate at %s: bad size %s", act, vals[0]))
			return
		}
		f.allocMu.Lock()
		base := f.nextAddr
		f.nextAddr += uint32(n)
		f.allocMu.Unlock()
		nd.sendToDests(act, in.Dests, token.NewRef(token.Ref{Base: base, Len: uint32(n)}), act.Initiation)
	case graph.OpFetch:
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 {
			f.fail(fmt.Errorf("emulator: fetch at %s: bad address %s", act, vals[0]))
			return
		}
		d := in.Dests[0]
		rt := replyTag{
			activity: token.ActivityName{
				Context:    act.Context,
				CodeBlock:  act.CodeBlock,
				Statement:  d.Stmt,
				Initiation: act.Initiation,
			},
			port: d.Port,
			nt:   blk.Instr(d.Stmt).NT,
		}
		home := f.homeModule(uint32(addr))
		f.post(nd.id, message{dst: home, isReq: &isRequest{addr: uint32(addr), reply: rt}})
	case graph.OpStore:
		addr, err := vals[0].AsInt()
		if err != nil || addr < 0 {
			f.fail(fmt.Errorf("emulator: store at %s: bad address %s", act, vals[0]))
			return
		}
		home := f.homeModule(uint32(addr))
		f.post(nd.id, message{dst: home, isReq: &isRequest{write: true, addr: uint32(addr), value: vals[1]}})
	case graph.OpSink, graph.OpNop:
		// absorbed
	default:
		f.fail(fmt.Errorf("emulator: cannot execute %s", in.Op))
	}
}
