// Package emulator implements the second prong of the paper's Figure 3-1
// development plan: the multiprocessor emulation facility. Where
// internal/core models the tagged-token machine with detailed timing, the
// emulator gives up internal timings to run big programs fast — exactly
// the trade the paper describes — by mapping each processing element (with
// its integrated packet-switch module) onto a goroutine and each hypercube
// link onto message passing between nodes.
//
// The facility reproduces the Section 3 mechanisms:
//
//   - a (2^dim)-node hypercube of PE+switch modules;
//   - table-based routing, so the experimenter can remap around topology
//     changes;
//   - link-fault injection with re-routing over the cube's redundancy
//     ("the hardware has the capability of exploiting the redundancy in
//     the hypercube network ... for fault tolerance");
//   - static partitioning into independent sub-machines.
//
// It interprets the same compiled dataflow graphs as internal/core and the
// reference interpreter, and must agree with both on every answer.
package emulator

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/token"
)

// Config parameterizes the facility.
type Config struct {
	// Dim is the hypercube dimension: 2^Dim PE+switch modules. The
	// paper's facility was 32 to 128 processors (dim 5 to 7).
	Dim int
	// Nodes, when non-zero, sets the module count directly and overrides
	// Dim. It must be a power of two (a hypercube has 2^k corners); a
	// single-node "cube" (Nodes=1, dimension zero) is valid and runs the
	// whole program on one PE+switch module.
	Nodes int
	// MaxMessages bounds total message traffic as a runaway guard.
	MaxMessages uint64
}

// maxDim bounds the cube: beyond 2^20 nodes the goroutine-per-node model
// is certainly a configuration mistake.
const maxDim = 20

// resolve validates the size parameters and returns the effective
// dimension.
func (c Config) resolve() (Config, error) {
	switch {
	case c.Nodes < 0:
		return c, fmt.Errorf("emulator: negative node count %d", c.Nodes)
	case c.Nodes > 0:
		if c.Nodes&(c.Nodes-1) != 0 {
			return c, fmt.Errorf("emulator: node count %d is not a power of two (a %d-dim hypercube has 2^%d corners)",
				c.Nodes, bits.Len(uint(c.Nodes)), bits.Len(uint(c.Nodes)))
		}
		c.Dim = bits.TrailingZeros(uint(c.Nodes))
	case c.Dim < 0:
		return c, fmt.Errorf("emulator: negative dimension %d", c.Dim)
	case c.Dim == 0:
		c.Dim = 5 // historical default: the paper's 32-processor facility
	}
	if c.Dim > maxDim {
		return c, fmt.Errorf("emulator: dimension %d exceeds the %d-dim limit", c.Dim, maxDim)
	}
	if c.MaxMessages == 0 {
		c.MaxMessages = 500_000_000
	}
	return c, nil
}

// message is one packet between switch modules.
type message struct {
	dst int
	// exactly one of tok / isReq is meaningful
	tok   token.Token
	isReq *isRequest
	hops  int
}

type isRequest struct {
	write bool
	addr  uint32
	value token.Value
	// for reads:
	reply replyTag
}

type replyTag struct {
	activity token.ActivityName
	port     uint8
	nt       uint8
}

// Facility is the assembled emulation machine.
type Facility struct {
	cfg   Config
	n     int
	prog  *graph.Program
	nodes []*node
	// runNodes is the node subset the current run spreads work over (the
	// selected partition; the whole cube by default).
	runNodes []int

	// routing: next hop tables, guarded for mid-run fault injection
	routeMu sync.RWMutex
	alive   [][]bool
	table   [][]int16 // table[node][dst] = next node (or -1)
	part    []int

	// context manager (the facility's "microcode task")
	ctxMu    sync.Mutex
	nextCtx  token.Context
	ctxs     map[token.Context]*ctxRecord
	ctxFreed atomic.Uint64

	// I-structure allocation
	allocMu  sync.Mutex
	nextAddr uint32

	// termination detection: units = queued messages not yet fully
	// processed; when it falls to zero the machine is quiescent
	units    atomic.Int64
	done     chan struct{}
	doneOnce sync.Once

	// results and faults
	resMu   sync.Mutex
	results []token.Value
	runErr  error

	// statistics
	Messages  atomic.Uint64
	Hops      atomic.Uint64
	Fired     atomic.Uint64
	Deferred  atomic.Uint64
	Forwarded atomic.Uint64
}

type ctxRecord struct {
	block       graph.BlockID
	parent      token.ActivityName
	parentBlock graph.BlockID
	returnDests []graph.Dest
	// reclamation state, guarded by ctxMu (non-strict calls may return
	// before all arguments arrive)
	argsSent int
	returned bool
}

// maybeFreeCtxLocked reclaims a record; the caller holds ctxMu.
func (f *Facility) maybeFreeCtxLocked(u token.Context, rec *ctxRecord) {
	if rec.returned && rec.argsSent >= len(f.prog.Block(rec.block).Entries) {
		delete(f.ctxs, u)
		f.ctxFreed.Add(1)
	}
}

// node is one PE plus its integrated switch module.
type node struct {
	f  *Facility
	id int

	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
	stop  bool

	// dataflow interpretation state (touched only by this node's goroutine)
	waiting map[token.ActivityName]*partial
	cells   map[uint32]*cell

	processed uint64
}

type partial struct {
	vals [2]token.Value
	have [2]bool
}

type cell struct {
	present bool
	value   token.Value
	waiters []replyTag
}

// New builds a facility for the program with a defaulted configuration;
// it panics on an invalid size (use Build to get the error instead).
func New(cfg Config, prog *graph.Program) *Facility {
	f, err := Build(cfg, prog)
	if err != nil {
		panic(err)
	}
	return f
}

// Build validates cfg and assembles a facility for the program. Invalid
// sizes — a non-power-of-two node count, a negative dimension — are
// reported as errors.
func Build(cfg Config, prog *graph.Program) (*Facility, error) {
	cfg, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	n := 1 << cfg.Dim
	f := &Facility{
		cfg:     cfg,
		n:       n,
		prog:    prog,
		nextCtx: 1,
		ctxs:    map[token.Context]*ctxRecord{},
		done:    make(chan struct{}),
		alive:   make([][]bool, n),
		part:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		f.alive[i] = make([]bool, cfg.Dim)
		for k := range f.alive[i] {
			f.alive[i][k] = true
		}
		nd := &node{f: f, id: i, waiting: map[token.ActivityName]*partial{}, cells: map[uint32]*cell{}}
		nd.cond = sync.NewCond(&nd.mu)
		f.nodes = append(f.nodes, nd)
	}
	f.recomputeTablesLocked()
	return f, nil
}

// KillLink disables the dimension-k link at nd (both directions) and
// re-routes around it, usable mid-run.
func (f *Facility) KillLink(nd, k int) {
	f.routeMu.Lock()
	defer f.routeMu.Unlock()
	f.alive[nd][k] = false
	f.alive[nd^(1<<k)][k] = false
	f.recomputeTablesLocked()
}

// Partition splits the facility; nil restores one machine. Programs run
// within the partition of the node their tokens hash to, so partitioning
// is meaningful for runs started with RunOnPartition.
func (f *Facility) Partition(assign []int) {
	f.routeMu.Lock()
	defer f.routeMu.Unlock()
	if assign == nil {
		for i := range f.part {
			f.part[i] = 0
		}
	} else {
		copy(f.part, assign)
	}
	f.recomputeTablesLocked()
}

// recomputeTablesLocked rebuilds next-hop tables by BFS over live,
// same-partition links. Caller holds routeMu.
func (f *Facility) recomputeTablesLocked() {
	f.table = make([][]int16, f.n)
	for i := range f.table {
		f.table[i] = make([]int16, f.n)
		for j := range f.table[i] {
			f.table[i][j] = -1
		}
	}
	dist := make([]int, f.n)
	q := make([]int, 0, f.n)
	for dst := 0; dst < f.n; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		q = q[:0]
		q = append(q, dst)
		for len(q) > 0 {
			cur := q[0]
			q = q[1:]
			for k := 0; k < f.cfg.Dim; k++ {
				if !f.alive[cur][k] {
					continue
				}
				nb := cur ^ (1 << k)
				if f.part[nb] != f.part[dst] {
					continue
				}
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					f.table[nb][dst] = int16(cur)
					q = append(q, nb)
				}
			}
		}
	}
}

// nextHop consults the routing table.
func (f *Facility) nextHop(at, dst int) int {
	f.routeMu.RLock()
	defer f.routeMu.RUnlock()
	return int(f.table[at][dst])
}

// fail records the first fault and wakes everyone up.
func (f *Facility) fail(err error) {
	f.resMu.Lock()
	if f.runErr == nil {
		f.runErr = err
	}
	f.resMu.Unlock()
	f.finish()
}

func (f *Facility) finish() {
	f.doneOnce.Do(func() { close(f.done) })
}

// post enqueues a message at a node's switch, accounting a unit of work.
func (f *Facility) post(at int, m message) {
	if f.Messages.Add(1) > f.cfg.MaxMessages {
		f.fail(fmt.Errorf("emulator: message budget exhausted"))
		return
	}
	f.units.Add(1)
	nd := f.nodes[at]
	nd.mu.Lock()
	nd.queue = append(nd.queue, m)
	nd.mu.Unlock()
	nd.cond.Signal()
}

// homePE maps a tag onto the current run's node set.
func (f *Facility) homePE(t token.Tag) int {
	return f.runNodes[t.HomePE(len(f.runNodes))]
}

// homeModule maps a structure address onto its owning node.
func (f *Facility) homeModule(addr uint32) int {
	return f.runNodes[int(addr)%len(f.runNodes)]
}
