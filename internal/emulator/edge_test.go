package emulator

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/simtest"
	"repro/internal/token"
	"repro/internal/workload"
)

// buildFor compiles src and returns the program plus entry args.
func buildFor(t *testing.T, src string, args ...token.Value) (*graph.Program, []token.Value) {
	t.Helper()
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	full, err := id.EntryArgs(prog, args)
	if err != nil {
		t.Fatalf("entry args: %v", err)
	}
	return prog, full
}

// TestOneNodeCube runs a recursive and an I-structure program on a
// dimension-zero hypercube: one PE+switch module, no routable links. All
// traffic is local delivery; the answers must still match the reference
// interpreter.
func TestOneNodeCube(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		arg  int64
	}{
		{"fib", workload.FibID, 10},
		{"producer-consumer", workload.ProducerConsumerID, 9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, args := buildFor(t, tc.src, token.Int(tc.arg))
			want, err := graph.NewInterp(prog).Run(args...)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			f, err := Build(Config{Nodes: 1}, prog)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if f.NumNodes() != 1 {
				t.Fatalf("NumNodes = %d, want 1", f.NumNodes())
			}
			got, err := f.Run(args...)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(got) != 1 || len(want) != 1 || got[0] != want[0] {
				t.Fatalf("results %v, want %v", got, want)
			}
			if f.Forwarded.Load() != 0 {
				t.Fatalf("a 1-node cube forwarded %d messages", f.Forwarded.Load())
			}
		})
	}
}

// TestInvalidSizesErrorCleanly pins the error path: a hypercube has 2^k
// corners, so non-power-of-two node counts and negative sizes must be
// rejected with an error, not a panic or a silently defaulted machine.
func TestInvalidSizesErrorCleanly(t *testing.T) {
	prog, _ := buildFor(t, workload.FibID, token.Int(1))
	for _, nodes := range []int{3, 5, 6, 12, 100, -1} {
		if _, err := Build(Config{Nodes: nodes}, prog); err == nil {
			t.Errorf("Build accepted %d nodes", nodes)
		}
	}
	if _, err := Build(Config{Dim: -2}, prog); err == nil {
		t.Error("Build accepted a negative dimension")
	}
	if _, err := Build(Config{Dim: maxDim + 1}, prog); err == nil {
		t.Error("Build accepted an absurd dimension")
	}
	// Valid sizes still build, and Nodes overrides Dim.
	f, err := Build(Config{Nodes: 8, Dim: 2}, prog)
	if err != nil {
		t.Fatalf("Build(Nodes:8): %v", err)
	}
	if f.NumNodes() != 8 {
		t.Fatalf("Nodes=8 built %d nodes", f.NumNodes())
	}
}

// twoNodeGolden is the schedule-independent observable set of a 2-node
// run: the answer and the dataflow firing/message totals are fixed by
// the program, not by goroutine interleaving (Deferred, by contrast, is
// timing-dependent and excluded).
type twoNodeGolden struct {
	Result   int64  `json:"result"`
	Nodes    int    `json:"nodes"`
	Fired    uint64 `json:"fired"`
	Messages uint64 `json:"messages"`
	Hops     uint64 `json:"hops"`
}

// TestTwoNodeGolden pins a 2-node run bit-for-bit.
func TestTwoNodeGolden(t *testing.T) {
	prog, args := buildFor(t, workload.SumLoopID, token.Int(12))
	f, err := Build(Config{Nodes: 2}, prog)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := f.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	v, err := res[0].AsInt()
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	simtest.Check(t, "testdata/two_node_sumloop.json", twoNodeGolden{
		Result:   v,
		Nodes:    f.NumNodes(),
		Fired:    f.Fired.Load(),
		Messages: f.Messages.Load(),
		Hops:     f.Hops.Load(),
	})
}
