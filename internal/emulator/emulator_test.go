package emulator

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
)

// runBoth compiles src, runs it on the reference interpreter and the
// emulator, and requires matching single results.
func runBoth(t *testing.T, cfg Config, src string, args ...token.Value) (token.Value, *Facility) {
	t.Helper()
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runArgs, err := id.EntryArgs(prog, args)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.NewInterp(prog).Run(runArgs...)
	if err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	f := New(cfg, prog)
	got, err := f.Run(runArgs...)
	if err != nil {
		t.Fatalf("emulator: %v", err)
	}
	if len(got) != 1 || len(want) != 1 || !got[0].Equal(want[0]) {
		t.Fatalf("emulator %v, interpreter %v", got, want)
	}
	return got[0], f
}

func TestEmulatorArithmetic(t *testing.T) {
	got, _ := runBoth(t, Config{Dim: 3}, "def main(a, b) = (a + b) * (a - b);", token.Int(9), token.Int(4))
	if got.I != 65 {
		t.Fatalf("got %s", got)
	}
}

func TestEmulatorFibonacci(t *testing.T) {
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	got, f := runBoth(t, Config{Dim: 5}, src, token.Int(14))
	if got.I != 377 {
		t.Fatalf("fib(14) = %s", got)
	}
	if f.Forwarded.Load() == 0 {
		t.Fatal("no messages crossed switch modules — routing untested")
	}
}

func TestEmulatorTrapezoid(t *testing.T) {
	src := `
def f(x) = x * x;
def main(a, b, n) =
  { h = (b - a) / n;
    (initial s <- (f(a) + f(b)) / 2; x <- a + h
     for i from 1 to n - 1 do
       new x <- x + h;
       new s <- s + f(x)
     return s) * h };
`
	got, _ := runBoth(t, Config{Dim: 4}, src, token.Float(0), token.Float(1), token.Float(64))
	if math.Abs(got.F-1.0/3.0) > 1e-3 {
		t.Fatalf("trapezoid = %v", got.F)
	}
}

func TestEmulatorIStructures(t *testing.T) {
	src := `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i * 3;
           new z <- z
         return 0);
    (initial s <- p
     for i from 0 to n - 1 do
       new s <- s + a[i]
     return s) };
`
	got, _ := runBoth(t, Config{Dim: 4}, src, token.Int(20))
	if got.I != 570 {
		t.Fatalf("sum = %s", got)
	}
}

func TestEmulatorAgreesWithCoreMachine(t *testing.T) {
	// The two prongs of Figure 3-1 must agree on answers.
	src := `
def f(x) = if x % 2 == 0 then x / 2 else 3 * x + 1;
def main(n) =
  (initial x <- n; c <- 0
   for i from 1 to 200 do
     new x <- if x == 1 then 1 else f(x);
     new c <- if x == 1 then c else c + 1
   return c);
`
	got, _ := runBoth(t, Config{Dim: 3}, src, token.Int(97))
	if got.I != 118 {
		t.Fatalf("collatz(97) = %s, want 118", got)
	}
}

func TestEmulatorSpreadsWork(t *testing.T) {
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Dim: 4}, prog)
	if _, err := f.Run(token.Int(15)); err != nil {
		t.Fatal(err)
	}
	busyNodes := 0
	for i := 0; i < f.NumNodes(); i++ {
		if f.NodeProcessed(i) > 0 {
			busyNodes++
		}
	}
	if busyNodes < f.NumNodes()/2 {
		t.Fatalf("only %d of %d nodes did work", busyNodes, f.NumNodes())
	}
}

func TestEmulatorSurvivesLinkFaults(t *testing.T) {
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Dim: 4}, prog)
	// Injure the cube before the run: several dead links, still connected.
	f.KillLink(0, 0)
	f.KillLink(5, 2)
	f.KillLink(9, 3)
	got, err := f.Run(token.Int(13))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I != 233 {
		t.Fatalf("fib(13) = %s after faults", got[0])
	}
}

func TestEmulatorPartitionedSubMachine(t *testing.T) {
	src := `def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Dim: 3}, prog)
	part := make([]int, 8)
	for i := range part {
		part[i] = i >> 2 // two 4-node machines
	}
	f.Partition(part)
	got, err := f.RunPartition(1, token.Int(40))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I != 820 {
		t.Fatalf("sum = %s", got[0])
	}
	// Nodes outside partition 1 must have processed nothing.
	for i := 0; i < 4; i++ {
		if f.NodeProcessed(i) != 0 {
			t.Fatalf("node %d outside the partition processed %d messages", i, f.NodeProcessed(i))
		}
	}
}

func TestEmulatorDetectsDeadlock(t *testing.T) {
	b := graph.NewBuilder("dead")
	bb := b.NewBlock("main", 1)
	alloc := bb.Op(graph.OpAllocate, "")
	addr := bb.OpLit(graph.OpIAddr, token.Int(0), 1, "")
	fetch := bb.Op(graph.OpFetch, "")
	ret := bb.Op(graph.OpReturn, "")
	bb.Connect(bb.Entry(0), alloc, 0)
	bb.Connect(alloc, addr, 0)
	bb.Connect(addr, fetch, 0)
	bb.Connect(fetch, ret, 0)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Dim: 2}, prog)
	_, err = f.Run(token.Int(4))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestEmulatorWrongArity(t *testing.T) {
	prog, err := id.Compile("def main(a, b) = a + b;")
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Dim: 2}, prog)
	if _, err := f.Run(token.Int(1)); err == nil {
		t.Fatal("wrong arity must error")
	}
}

func TestEmulatorMidRunFaultInjection(t *testing.T) {
	// Kill links WHILE the program runs — the paper's "simple error
	// recovery under the control of a microcode task". The answer must
	// survive re-routing that happens concurrently with traffic.
	src := `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		f := New(Config{Dim: 4}, prog)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// inject faults as soon as traffic is flowing
			for f.Messages.Load() < 100 {
			}
			f.KillLink(0, 1)
			f.KillLink(9, 3)
		}()
		got, err := f.Run(token.Int(16))
		<-done
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got[0].I != 987 {
			t.Fatalf("trial %d: fib(16) = %s after mid-run faults", trial, got[0])
		}
	}
}

func TestEmulatorConcurrentFacilities(t *testing.T) {
	// Several independent facilities running at once (each with its own
	// goroutine pool) must not interfere.
	prog, err := id.Compile(`def main(n) = (initial s <- 0 for i from 1 to n do new s <- s + i return s);`)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		n   int64
		val int64
		err error
	}
	ch := make(chan res, 8)
	for k := int64(1); k <= 8; k++ {
		k := k
		go func() {
			f := New(Config{Dim: 3}, prog)
			out, err := f.Run(token.Int(k * 10))
			if err != nil {
				ch <- res{n: k, err: err}
				return
			}
			ch <- res{n: k, val: out[0].I}
		}()
	}
	for i := 0; i < 8; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatalf("facility %d: %v", r.n, r.err)
		}
		n := r.n * 10
		if r.val != n*(n+1)/2 {
			t.Fatalf("facility %d computed %d", r.n, r.val)
		}
	}
}
