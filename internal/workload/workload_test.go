package workload

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/vn"
)

func newInterp(t *testing.T, prog *graph.Program) *graph.Interp {
	t.Helper()
	return graph.NewInterp(prog)
}

func runID(t *testing.T, src string, args ...token.Value) token.Value {
	t.Helper()
	res, _, err := id.Run(src, args...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	return res[0]
}

func TestTrapezoidCompilesAndRuns(t *testing.T) {
	got := runID(t, TrapezoidID, token.Float(0), token.Float(2), token.Float(40))
	// integral of x^2 on [0,2] is 8/3
	if got.F < 2.6 || got.F > 2.75 {
		t.Fatalf("trapezoid = %v", got.F)
	}
}

func TestFib(t *testing.T) {
	if got := runID(t, FibID, token.Int(12)); got.I != 144 {
		t.Fatalf("fib(12) = %s", got)
	}
}

func TestSumLoop(t *testing.T) {
	if got := runID(t, SumLoopID, token.Int(50)); got.I != 1275 {
		t.Fatalf("sum = %s", got)
	}
}

func TestProducerConsumerIsNSquared(t *testing.T) {
	for _, n := range []int64{1, 4, 10, 25} {
		if got := runID(t, ProducerConsumerID, token.Int(n)); got.I != n*n {
			t.Fatalf("pc(%d) = %s, want %d", n, got, n*n)
		}
	}
}

func TestMatMulChecksumMatchesGo(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		want := MatMulChecksum(n)
		if got := runID(t, MatMulID, token.Int(int64(n))); got.I != want {
			t.Fatalf("matmul(%d) = %s, want %d", n, got, want)
		}
	}
}

func TestCollatz(t *testing.T) {
	if got := runID(t, CollatzID, token.Int(27)); got.I != 111 {
		t.Fatalf("collatz(27) = %s, want 111", got)
	}
}

func TestWavefrontMatchesGo(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		want := WavefrontExpected(n)
		if got := runID(t, WavefrontID, token.Int(int64(n))); got.I != want {
			t.Fatalf("wavefront(%d) = %s, want %d", n, got, want)
		}
	}
}

func TestWavefrontHasDiagonalParallelism(t *testing.T) {
	prog, err := id.Compile(WavefrontID)
	if err != nil {
		t.Fatal(err)
	}
	// Wavefront must unfold: ideal max parallelism grows with n.
	widths := map[int]int{}
	for _, n := range []int{4, 8} {
		it := newInterp(t, prog)
		if _, err := it.Run(token.Int(int64(n))); err != nil {
			t.Fatal(err)
		}
		widths[n] = it.MaxParallelism()
	}
	if widths[8] <= widths[4] {
		t.Fatalf("wavefront parallelism did not grow: %v", widths)
	}
}

func TestFillConsumeParameterized(t *testing.T) {
	src := FillConsumeID("i * i")
	if got := runID(t, src, token.Int(5)); got.I != 0+1+4+9+16 {
		t.Fatalf("fill/consume = %s", got)
	}
}

func TestASMKernelsAssemble(t *testing.T) {
	for name, src := range map[string]string{
		"MemLoopASM":     MemLoopASM,
		"CounterLockASM": CounterLockASM,
		"HotspotASM":     HotspotASM,
		"RelaxASM":       RelaxASM,
	} {
		if _, err := vn.Assemble(src); err != nil {
			t.Errorf("%s does not assemble: %v", name, err)
		}
	}
}

func TestMergeSortChecksumOracle(t *testing.T) {
	// spot check: n=4 values are 0,37,74,111%101=10 -> sorted 0,10,37,74
	if got := MergeSortChecksum(4); got != 0*1+10*2+37*3+74*4 {
		t.Fatalf("oracle = %d", got)
	}
}

func TestMergeSortSmall(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 8} {
		want := MergeSortChecksum(int(n))
		if got := runID(t, MergeSortID, token.Int(n)); got.I != want {
			t.Fatalf("msort(%d) = %s, want %d", n, got, want)
		}
	}
}

func TestMergeSortSortedOutput(t *testing.T) {
	// Inspect the sorted structure directly via the interpreter.
	src := `
def copyRange(a, off, m) =
  { b = array(m);
    f = (initial z <- 0
         for q from 0 to m - 1 do
           b[q] <- a[off + q];
           new z <- z
         return 0);
    b };
def pickX(x, y, i, j, nx, ny) =
  if j >= ny then true
  else if i >= nx then false
  else x[i] <= y[j];
def merge(x, nx, y, ny) =
  { out = array(nx + ny);
    f = (initial i <- 0; j <- 0
         while i + j < nx + ny do
           out[i + j] <- if pickX(x, y, i, j, nx, ny) then x[i] else y[j];
           new i <- if pickX(x, y, i, j, nx, ny) then i + 1 else i;
           new j <- if pickX(x, y, i, j, nx, ny) then j else j + 1
         return 0);
    out };
def msort(a, n) =
  if n <= 1 then a
  else { h = n / 2;
         merge(msort(copyRange(a, 0, h), h),
               h,
               msort(copyRange(a, h, n - h), n - h),
               n - h) };
def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for q from 0 to n - 1 do
           a[q] <- q * 53 % 31;
           new z <- z
         return 0);
    s = msort(a, n);
    (initial c <- f for q from 0 to n - 1 do new c <- c + s[q] * 0 return s) };
`
	prog, err := id.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it := newInterp(t, prog)
	const n = 12
	res, err := it.Run(token.Int(n))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := res[0].AsRef()
	if err != nil {
		t.Fatalf("result is not a structure ref: %v", res[0])
	}
	vals := it.Structure(ref)
	if len(vals) != n {
		t.Fatalf("sorted structure has %d elements", len(vals))
	}
	counts := map[int64]int{}
	var prev int64 = -1
	for i, v := range vals {
		if v.Kind != token.KindInt {
			t.Fatalf("element %d unwritten: %v", i, v)
		}
		if v.I < prev {
			t.Fatalf("not sorted at %d: %v", i, vals)
		}
		prev = v.I
		counts[v.I]++
	}
	for q := 0; q < n; q++ {
		counts[int64(q*53%31)]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("multiset broken at value %d (%+d)", k, c)
		}
	}
}
