// Package workload collects the programs driven through the simulators by
// the experiments, the benchmarks, and the examples: MiniID sources for the
// dataflow machines and assembly kernels for the von Neumann baselines.
// Keeping them here guarantees every substrate is measured on the same
// computations.
package workload

import "fmt"

// TrapezoidID is the paper's Figure 2-2 program: integrate f(x)=x² over
// [a,b] with n intervals by the trapezoidal rule. main(a, b, n).
const TrapezoidID = `
def f(x) = x * x;
def main(a, b, n) =
  { h = (b - a) / n;
    (initial s <- (f(a) + f(b)) / 2;
             x <- a + h
     for i from 1 to n - 1 do
       new x <- x + h;
       new s <- s + f(x)
     return s) * h };
`

// FibID is the doubly recursive Fibonacci — a procedure-call stress test
// whose parallelism is a binary tree of contexts. main(n).
const FibID = `
def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main(n) = fib(n);
`

// SumLoopID is the minimal sequential loop: sum 1..n. main(n).
const SumLoopID = `
def main(n) =
  (initial s <- 0
   for i from 1 to n do
     new s <- s + i
   return s);
`

// ProducerConsumerID fills an n-element I-structure in one loop and
// consumes it in another. No barrier separates them: I-structure presence
// bits synchronize element-by-element, so production and consumption
// overlap — the paper's answer to Issue 2. main(n) returns
// sum(i*2+1 for i in 0..n-1) = n².
const ProducerConsumerID = `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- 2 * i + 1;
           new z <- z
         return 0);
    (initial s <- p
     for i from 0 to n - 1 do
       new s <- s + a[i]
     return s) };
`

// MatMulID multiplies two n×n matrices held in I-structures and returns a
// checksum. Initialization, multiplication, and checksum are separate
// loops with no barriers: presence bits order everything. main(n).
const MatMulID = `
def main(n) =
  { a = array(n * n);
    b = array(n * n);
    c = array(n * n);
    init = (initial z <- 0
            for k from 0 to n * n - 1 do
              a[k] <- k % 7 + 1;
              b[k] <- k % 5 + 1;
              new z <- z
            return 0);
    mul = (initial z <- init
           for i from 0 to n - 1 do
             new z <- z + (initial y <- 0
                           for j from 0 to n - 1 do
                             c[i * n + j] <- (initial dot <- 0
                                              for k from 0 to n - 1 do
                                                new dot <- dot + a[i * n + k] * b[k * n + j]
                                              return dot);
                             new y <- y
                           return 0)
           return z);
    (initial s <- mul
     for k from 0 to n * n - 1 do
       new s <- s + c[k]
     return s) };
`

// MatMulChecksum computes the expected MatMulID result in plain Go.
func MatMulChecksum(n int) int64 {
	a := make([]int64, n*n)
	b := make([]int64, n*n)
	for k := range a {
		a[k] = int64(k%7 + 1)
		b[k] = int64(k%5 + 1)
	}
	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var dot int64
			for k := 0; k < n; k++ {
				dot += a[i*n+k] * b[k*n+j]
			}
			sum += dot
		}
	}
	return sum
}

// CollatzID bounds-checks 200 iterations of the Collatz map and counts the
// steps to reach 1 — a control-heavy serial workload. main(n).
const CollatzID = `
def f(x) = if x % 2 == 0 then x / 2 else 3 * x + 1;
def main(n) =
  (initial x <- n; c <- 0
   for i from 1 to 200 do
     new x <- if x == 1 then 1 else f(x);
     new c <- if x == 1 then c else c + 1
   return c);
`

// WavefrontID computes a dynamic-programming table t[i][j] =
// t[i-1][j] + t[i][j-1] over an n×n I-structure, seeded with ones in row
// and column zero. Parallelism is an anti-diagonal wavefront — a shape
// only per-element synchronization exploits. main(n) returns t[n-1][n-1].
const WavefrontID = `
def main(n) =
  { t = array(n * n);
    seed = (initial z <- 0
            for k from 0 to n - 1 do
              t[k] <- 1;
              new z <- z
            return 0);
    seedc = (initial z <- seed
             for k from 1 to n - 1 do
               t[k * n] <- 1;
               new z <- z
             return 0);
    fill = (initial z <- seedc
            for i from 1 to n - 1 do
              new z <- z + (initial y <- 0
                            for j from 1 to n - 1 do
                              t[i * n + j] <- t[(i - 1) * n + j] + t[i * n + j - 1];
                              new y <- y
                            return 0)
            return z);
    t[n * n - 1] + fill * 0 };
`

// WavefrontExpected computes the expected WavefrontID result: the value of
// the (n-1, n-1) cell, which is C(2(n-1)-..) — computed directly.
func WavefrontExpected(n int) int64 {
	t := make([]int64, n*n)
	for k := 0; k < n; k++ {
		t[k] = 1
		t[k*n] = 1
	}
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			t[i*n+j] = t[(i-1)*n+j] + t[i*n+j-1]
		}
	}
	return t[n*n-1]
}

// MemLoopASM is the E1/E2 von Neumann kernel: one load plus four register
// operations per iteration. Before running, set r1 = data base and r4 =
// iteration count.
const MemLoopASM = `
loop:   ld   r2, r1, 0
        add  r3, r3, r2
        addi r1, r1, 1
        addi r4, r4, -1
        bne  r4, r0, loop
        halt
`

// CounterLockASM increments a shared counter under a TAS spinlock: lock at
// address 0, counter at address 1, iterations in r5.
const CounterLockASM = `
        li   r10, 0
        li   r11, 1
outer:  beq  r5, r0, done
spin:   tas  r3, r10
        bne  r3, r0, spin
        ld   r4, r11, 0
        addi r4, r4, 1
        st   r4, r11, 0
        st   r0, r10, 0
        addi r5, r5, -1
        j    outer
done:   halt
`

// HotspotASM performs one FETCH-AND-ADD on the shared cell at address 0
// and records the ticket at the private address in r4.
const HotspotASM = `
        li  r1, 0
        li  r2, 1
        faa r3, r1, r2
        st  r3, r4, 0
        halt
`

// RelaxASM is the Cm* chaotic-relaxation sweep kernel: r1 = chunk base,
// r2 = cells, r6 = sweeps; each cell becomes the mean of its neighbours.
const RelaxASM = `
sweep:  beq  r6, r0, done
        add  r7, r1, r0
        add  r8, r2, r0
cell:   beq  r8, r0, endsweep
        ld   r3, r7, -1
        ld   r4, r7, 1
        add  r5, r3, r4
        li   r9, 2
        div  r5, r5, r9
        st   r5, r7, 0
        addi r7, r7, 1
        addi r8, r8, -1
        j    cell
endsweep: addi r6, r6, -1
        j    sweep
done:   halt
`

// MergeSortID is a recursive merge sort over I-structure arrays: sub-sorts
// of the two halves run as independent contexts (tree parallelism), every
// merge fills a fresh single-assignment array through a data-dependent
// while loop, and the conditional gating ensures out-of-range elements are
// never even fetched. main(n) sorts the array [i*37 mod 101 : i in 0..n-1]
// and returns a checksum of position-weighted elements; MergeSortChecksum
// computes the expected value.
const MergeSortID = `
def copyRange(a, off, m) =
  { b = array(m);
    f = (initial z <- 0
         for q from 0 to m - 1 do
           b[q] <- a[off + q];
           new z <- z
         return 0);
    b };

def pickX(x, y, i, j, nx, ny) =
  if j >= ny then true
  else if i >= nx then false
  else x[i] <= y[j];

def merge(x, nx, y, ny) =
  { out = array(nx + ny);
    f = (initial i <- 0; j <- 0
         while i + j < nx + ny do
           out[i + j] <- if pickX(x, y, i, j, nx, ny) then x[i] else y[j];
           new i <- if pickX(x, y, i, j, nx, ny) then i + 1 else i;
           new j <- if pickX(x, y, i, j, nx, ny) then j else j + 1
         return 0);
    out };

def msort(a, n) =
  if n <= 1 then a
  else { h = n / 2;
         merge(msort(copyRange(a, 0, h), h), h,
               msort(copyRange(a, h, n - h), n - h), n - h) };

def main(n) =
  { a = array(n);
    f = (initial z <- 0
         for q from 0 to n - 1 do
           a[q] <- q * 37 % 101;
           new z <- z
         return 0);
    s = msort(a, n);
    (initial c <- f
     for q from 0 to n - 1 do
       new c <- c + s[q] * (q + 1)
     return c) };
`

// MergeSortChecksum computes MergeSortID's expected result in plain Go.
func MergeSortChecksum(n int) int64 {
	vals := make([]int64, n)
	for q := 0; q < n; q++ {
		vals[q] = int64(q * 37 % 101)
	}
	// insertion sort (n is small in tests)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	var c int64
	for q := 0; q < n; q++ {
		c += vals[q] * int64(q+1)
	}
	return c
}

// FillConsumeID builds the E4/E5 fill-then-sum workload with a
// parameterizable element expression, used by the experiment sweeps.
func FillConsumeID(elementExpr string) string {
	return fmt.Sprintf(`
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- %s;
           new z <- z
         return 0);
    (initial s <- p
     for i from 0 to n - 1 do
       new s <- s + a[i]
     return s) };
`, elementExpr)
}
