// Package cache implements processor caches and the cache-coherence
// machinery the paper argues cannot scale (Issue 1, the Censier-Feautrier
// coherence requirement): set-associative caches kept coherent by an MSI
// write-invalidate protocol over a serializing snoopy bus.
//
// The measurable costs the experiments plot are exactly the ones the paper
// names: invalidation traffic, bus serialization of writes to shared data,
// and the growth of both with the number of sharing processors.
package cache

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// lineState is the MSI coherence state of one cache line.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// line is one cache line (block-granular; data tracked word-by-word in the
// shared backing store for verification).
type line struct {
	state lineState
	tag   uint32
	lru   uint64
}

// Config parameterizes the cache system.
type Config struct {
	// Sets and Ways shape each private cache; BlockWords is the line size
	// in words (addresses are word-granular).
	Sets, Ways, BlockWords int
	// BusTime is the bus occupancy of one transaction; MemTime is the
	// extra occupancy when data comes from memory rather than a cache.
	BusTime, MemTime sim.Cycle
	// HitTime is the cache access time on a hit.
	HitTime sim.Cycle
}

func (c Config) withDefaults() Config {
	if c.Sets == 0 {
		c.Sets = 64
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
	if c.BlockWords == 0 {
		c.BlockWords = 4
	}
	if c.BusTime == 0 {
		c.BusTime = 4
	}
	if c.MemTime == 0 {
		c.MemTime = 10
	}
	if c.HitTime == 0 {
		c.HitTime = 1
	}
	return c
}

// Access is one outstanding processor request.
type Access struct {
	Addr  uint32
	Write bool
	Value int64 // stored value for writes
	Done  func(value int64)
}

// CacheStats counts per-processor cache events.
type CacheStats struct {
	Hits, Misses  metrics.Counter
	Upgrades      metrics.Counter // S→M transitions requiring the bus
	Invalidations metrics.Counter // lines invalidated by other processors
	Writebacks    metrics.Counter
}

// MissRate returns misses / (hits+misses).
func (s *CacheStats) MissRate() float64 {
	total := s.Hits.Value() + s.Misses.Value()
	if total == 0 {
		return 0
	}
	return float64(s.Misses.Value()) / float64(total)
}

// System is a set of private caches over a single shared memory, kept
// coherent by a snoopy bus. Each processor has one outstanding access; the
// bus serializes all misses and upgrades.
type System struct {
	cfg    Config
	caches [][]line // [cpu][set*ways+way]
	stats  []CacheStats

	memory map[uint32]int64

	// per-cpu request queues (processors block on their head request)
	reqs [][]Access
	// per-cpu local completion time for hits
	hitDone []sim.Cycle

	// bus
	busBusyUntil sim.Cycle
	busRR        int
	busOwner     int // cpu whose transaction occupies the bus; -1 free
	busDoneAt    sim.Cycle
	lruTick      uint64

	// settled marks the cycle through which BusBusy ticks are accounted,
	// for lazy settlement of cycles an event-driven engine jumps over.
	settled sim.Cycle

	// BusTransactions counts serialized coherence/miss transactions;
	// BusBusy tracks bus utilization.
	BusTransactions metrics.Counter
	BusBusy         metrics.Utilization

	waker sim.Waker
}

// Attach receives the engine's waker (sim.Wakeable).
func (s *System) Attach(w sim.Waker) { s.waker = w }

// NewSystem returns a coherent cache system for n processors.
func NewSystem(cfg Config, n int) *System {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:      cfg,
		caches:   make([][]line, n),
		stats:    make([]CacheStats, n),
		memory:   map[uint32]int64{},
		reqs:     make([][]Access, n),
		hitDone:  make([]sim.Cycle, n),
		busOwner: -1,
	}
	for i := range s.caches {
		s.caches[i] = make([]line, cfg.Sets*cfg.Ways)
	}
	return s
}

// NumCPUs returns the processor count.
func (s *System) NumCPUs() int { return len(s.caches) }

// Stats returns processor i's cache statistics.
func (s *System) Stats(i int) *CacheStats { return &s.stats[i] }

// Request enqueues an access for processor cpu.
func (s *System) Request(cpu int, a Access) {
	s.reqs[cpu] = append(s.reqs[cpu], a)
	if s.waker != nil {
		if t := s.NextEvent(s.waker.Now()); t != sim.Never {
			s.waker.Wake(s, t)
		}
	}
}

// Pending reports whether any request is outstanding.
func (s *System) Pending() bool {
	if s.busOwner >= 0 {
		return true
	}
	for _, q := range s.reqs {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Poke initializes memory directly.
func (s *System) Poke(addr uint32, v int64) { s.memory[addr] = v }

// Peek reads memory directly (ignores dirty cached copies; use only when
// quiescent after FlushAll or for unshared data).
func (s *System) Peek(addr uint32) int64 { return s.memory[addr] }

func (s *System) blockOf(addr uint32) uint32 { return addr / uint32(s.cfg.BlockWords) }

func (s *System) setOf(block uint32) int { return int(block) % s.cfg.Sets }

// findLine returns cpu's line holding block, or nil.
func (s *System) findLine(cpu int, block uint32) *line {
	set := s.setOf(block)
	for w := 0; w < s.cfg.Ways; w++ {
		l := &s.caches[cpu][set*s.cfg.Ways+w]
		if l.state != invalid && l.tag == block {
			return l
		}
	}
	return nil
}

// victim picks the LRU way in the block's set.
func (s *System) victim(cpu int, block uint32) *line {
	set := s.setOf(block)
	var v *line
	for w := 0; w < s.cfg.Ways; w++ {
		l := &s.caches[cpu][set*s.cfg.Ways+w]
		if l.state == invalid {
			return l
		}
		if v == nil || l.lru < v.lru {
			v = l
		}
	}
	return v
}

// Step advances one cycle.
func (s *System) Step(now sim.Cycle) {
	s.settleThrough(now)
	s.BusBusy.Tick(now < s.busBusyUntil)
	s.settled = now + 1
	// complete the bus transaction that finishes this cycle
	if s.busOwner >= 0 && now >= s.busDoneAt {
		cpu := s.busOwner
		s.busOwner = -1
		s.completeMiss(cpu, now)
	}
	// per-cpu: service hits locally, request the bus on misses
	for cpu := range s.reqs {
		if len(s.reqs[cpu]) == 0 || s.busOwner == cpu {
			continue
		}
		if now < s.hitDone[cpu] {
			continue // hit in progress
		}
		a := s.reqs[cpu][0]
		block := s.blockOf(a.Addr)
		l := s.findLine(cpu, block)
		if l != nil && (!a.Write && l.state != invalid || a.Write && l.state == modified) {
			// pure cache hit: complete after HitTime without the bus
			s.stats[cpu].Hits.Inc()
			s.lruTick++
			l.lru = s.lruTick
			s.hitDone[cpu] = now + s.cfg.HitTime
			s.finish(cpu, a)
			continue
		}
		// needs the bus (miss or S→M upgrade): wait for arbitration
	}
	// bus arbitration: grant one waiting cpu per free bus
	if s.busOwner < 0 && now >= s.busBusyUntil {
		n := len(s.reqs)
		for k := 0; k < n; k++ {
			cpu := (s.busRR + k) % n
			if len(s.reqs[cpu]) == 0 || now < s.hitDone[cpu] {
				continue
			}
			a := s.reqs[cpu][0]
			block := s.blockOf(a.Addr)
			l := s.findLine(cpu, block)
			if l != nil && (!a.Write || l.state == modified) {
				continue // a hit, handled above next cycle
			}
			// start transaction
			dur := s.cfg.BusTime
			if l == nil || l.state == invalid {
				if !s.suppliedByPeer(cpu, block) {
					dur += s.cfg.MemTime
				}
			}
			s.busOwner = cpu
			s.busDoneAt = now + dur
			s.busBusyUntil = s.busDoneAt
			s.busRR = (cpu + 1) % n
			s.BusTransactions.Inc()
			break
		}
	}
}

// NextEvent reports the earliest cycle the system can make progress: the
// in-flight bus transaction's completion, a hit in progress finishing, a
// pending hit (now), or a miss waiting for the bus to free.
func (s *System) NextEvent(now sim.Cycle) sim.Cycle {
	next := sim.Never
	if s.busOwner >= 0 {
		next = s.busDoneAt
	}
	for cpu := range s.reqs {
		if len(s.reqs[cpu]) == 0 || s.busOwner == cpu {
			continue
		}
		var t sim.Cycle
		if now < s.hitDone[cpu] {
			t = s.hitDone[cpu]
		} else {
			a := s.reqs[cpu][0]
			l := s.findLine(cpu, s.blockOf(a.Addr))
			if l != nil && (!a.Write && l.state != invalid || a.Write && l.state == modified) {
				return now // hit ready to service
			}
			if s.busOwner >= 0 {
				t = s.busDoneAt // arbitration reopens at completion
			} else if s.busBusyUntil > now {
				t = s.busBusyUntil
			} else {
				return now // bus free: arbitration can grant this cycle
			}
		}
		if t < next {
			next = t
		}
	}
	if next < now {
		next = now
	}
	return next
}

// settleThrough accounts BusBusy ticks for unaccounted cycles before t.
// Exact during engine jumps: the bus state is frozen, so the busy cycles in
// the gap are those before busBusyUntil.
func (s *System) settleThrough(t sim.Cycle) {
	if t <= s.settled {
		return
	}
	var busy uint64
	if s.busBusyUntil > s.settled {
		end := s.busBusyUntil
		if end > t {
			end = t
		}
		busy = uint64(end - s.settled)
	}
	s.BusBusy.AddTicks(busy, uint64(t-s.settled))
	s.settled = t
}

// Settle accounts bus-utilization ticks for jumped-over cycles
// (sim.Settler).
func (s *System) Settle(through sim.Cycle) { s.settleThrough(through) }

// suppliedByPeer reports whether another cache holds the block (cache-to-
// cache transfer, no memory access needed).
func (s *System) suppliedByPeer(cpu int, block uint32) bool {
	for other := range s.caches {
		if other == cpu {
			continue
		}
		if s.findLine(other, block) != nil {
			return true
		}
	}
	return false
}

// completeMiss applies the snoop effects and installs the line when the
// bus transaction for cpu's head request finishes.
func (s *System) completeMiss(cpu int, now sim.Cycle) {
	if len(s.reqs[cpu]) == 0 {
		return
	}
	a := s.reqs[cpu][0]
	block := s.blockOf(a.Addr)
	// snoop: writes invalidate every other copy; reads downgrade M to S
	for other := range s.caches {
		if other == cpu {
			continue
		}
		if ol := s.findLine(other, block); ol != nil {
			if a.Write {
				if ol.state == modified {
					s.stats[other].Writebacks.Inc()
				}
				ol.state = invalid
				s.stats[other].Invalidations.Inc()
			} else if ol.state == modified {
				ol.state = shared
				s.stats[other].Writebacks.Inc()
			}
		}
	}
	l := s.findLine(cpu, block)
	if l == nil {
		l = s.victim(cpu, block)
		if l.state == modified {
			s.stats[cpu].Writebacks.Inc()
		}
		l.tag = block
		s.stats[cpu].Misses.Inc()
	} else {
		// S→M upgrade
		s.stats[cpu].Upgrades.Inc()
	}
	if a.Write {
		l.state = modified
	} else {
		l.state = shared
	}
	s.lruTick++
	l.lru = s.lruTick
	s.finish(cpu, a)
}

// finish commits the access's data effect and pops the request. Data
// commits at completion time, which the serializing bus orders globally —
// the coherence property under test.
func (s *System) finish(cpu int, a Access) {
	copy(s.reqs[cpu], s.reqs[cpu][1:])
	s.reqs[cpu] = s.reqs[cpu][:len(s.reqs[cpu])-1]
	if a.Write {
		s.memory[a.Addr] = a.Value
		if a.Done != nil {
			a.Done(0)
		}
		return
	}
	if a.Done != nil {
		a.Done(s.memory[a.Addr])
	}
}

// TotalInvalidations sums invalidations across caches.
func (s *System) TotalInvalidations() uint64 {
	var t uint64
	for i := range s.stats {
		t += s.stats[i].Invalidations.Value()
	}
	return t
}

// CheckInvariant verifies the MSI invariant: at most one modified copy of
// any block, and never modified alongside shared.
func (s *System) CheckInvariant() error {
	type holders struct{ m, sh int }
	h := map[uint32]*holders{}
	for cpu := range s.caches {
		for i := range s.caches[cpu] {
			l := &s.caches[cpu][i]
			if l.state == invalid {
				continue
			}
			e := h[l.tag]
			if e == nil {
				e = &holders{}
				h[l.tag] = e
			}
			if l.state == modified {
				e.m++
			} else {
				e.sh++
			}
		}
	}
	for block, e := range h {
		if e.m > 1 || (e.m == 1 && e.sh > 0) {
			return fmt.Errorf("cache: MSI violation on block %d: %d modified, %d shared", block, e.m, e.sh)
		}
	}
	return nil
}
