package cache

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// coherentSys is what the round-trip rig needs from either cache system.
type coherentSys interface {
	sim.Stateful
	Request(int, Access)
	Pending() bool
}

// ckptRig couples an engine with a cache system so the pair checkpoints as
// one unit, the way a machine owning both would.
type ckptRig struct {
	eng *sim.Engine
	sys coherentSys
}

func (r *ckptRig) SaveState(e *sim.Enc) {
	r.eng.SaveState(e)
	r.sys.SaveState(e)
}

func (r *ckptRig) LoadState(d *sim.Dec) error {
	if err := r.eng.LoadState(d); err != nil {
		return err
	}
	return r.sys.LoadState(d)
}

// newCkptRig builds a system of the given kind under an engine and, when
// issue is set, loads it with a deterministic mix of hot shared words and
// private ranges — enough traffic to have misses, upgrades, invalidations,
// and in-flight messages live at any mid-run pause point.
func newCkptRig(t *testing.T, kind string, issue bool) *ckptRig {
	t.Helper()
	const n = 4
	cfg := Config{Sets: 4, Ways: 2, BlockWords: 2}
	var sys coherentSys
	switch kind {
	case "snoopy":
		sys = NewSystem(cfg, n)
	case "directory":
		sys = NewDirectorySystem(cfg, n, 3)
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	eng := sim.NewEngine()
	eng.Register(sys.(sim.Component))
	if issue {
		rng := sim.NewRNG(7)
		for i := 0; i < 60; i++ {
			for cpu := 0; cpu < n; cpu++ {
				var addr uint32
				if rng.Bool(0.5) {
					addr = uint32(rng.Intn(6)) // hot shared words
				} else {
					addr = uint32(100 + cpu*32 + rng.Intn(8))
				}
				sys.Request(cpu, Access{Addr: addr, Write: rng.Bool(0.3), Value: int64(i)})
			}
		}
	}
	return &ckptRig{eng: eng, sys: sys}
}

func (r *ckptRig) run(limit sim.Cycle) bool {
	_, ok := r.eng.Run(func() bool { return !r.sys.Pending() }, limit)
	return ok
}

// TestCacheCheckpointRoundTrip pauses each coherence system mid-run,
// serializes engine+system, restores into a fresh pair, and requires the
// split run to end in exactly the state of the uninterrupted one.
func TestCacheCheckpointRoundTrip(t *testing.T) {
	for _, kind := range []string{"snoopy", "directory"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			ref := newCkptRig(t, kind, true)
			if !ref.run(1_000_000) {
				t.Fatal("reference run did not settle")
			}
			total := ref.eng.Now()
			refBytes := sim.Checkpoint(ref)

			for _, frac := range []sim.Cycle{1, total / 3, total / 2, total - 1} {
				paused := newCkptRig(t, kind, true)
				if paused.run(frac) {
					t.Fatalf("pause at %d: run settled early", frac)
				}
				data := sim.Checkpoint(paused)

				fresh := newCkptRig(t, kind, false)
				if err := sim.Restore(fresh, data); err != nil {
					t.Fatalf("restore at %d: %v", frac, err)
				}
				if re := sim.Checkpoint(fresh); !bytes.Equal(re, data) {
					t.Fatalf("pause at %d: restore→save changed the stream", frac)
				}
				if !fresh.run(1_000_000) {
					t.Fatalf("resume at %d: did not settle", frac)
				}
				if end := sim.Checkpoint(fresh); !bytes.Equal(end, refBytes) {
					t.Fatalf("resume at %d: end state differs from uninterrupted run", frac)
				}
			}
		})
	}
}

// TestCacheCheckpointRejects ensures mismatched checkpoints refuse to load.
func TestCacheCheckpointRejects(t *testing.T) {
	snoopy := newCkptRig(t, "snoopy", true)
	snoopy.run(50)
	dir := newCkptRig(t, "directory", true)
	dir.run(50)

	if err := sim.Restore(newCkptRig(t, "directory", false), sim.Checkpoint(snoopy)); err == nil {
		t.Fatal("directory system accepted a snoopy checkpoint")
	}
	if err := sim.Restore(newCkptRig(t, "snoopy", false), sim.Checkpoint(dir)); err == nil {
		t.Fatal("snoopy system accepted a directory checkpoint")
	}

	other := &ckptRig{eng: sim.NewEngine(), sys: NewSystem(Config{Sets: 8, Ways: 2, BlockWords: 2}, 4)}
	other.eng.Register(other.sys.(sim.Component))
	if err := sim.Restore(other, sim.Checkpoint(snoopy)); err == nil {
		t.Fatal("snoopy system accepted a differently-shaped checkpoint")
	}
}

// TestCacheCheckpointRejectsDoneCallback pins the documented limitation:
// an in-queue completion callback cannot be serialized and must panic
// rather than be dropped.
func TestCacheCheckpointRejectsDoneCallback(t *testing.T) {
	s := NewSystem(Config{}, 1)
	s.Request(0, Access{Addr: 1, Done: func(int64) {}})
	defer func() {
		if recover() == nil {
			t.Fatal("SaveState must panic on a pending Done callback")
		}
	}()
	s.SaveState(sim.NewEnc())
}
