package cache

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// DirectorySystem is the scalable alternative to the snoopy bus: an MSI
// protocol kept coherent by a directory at memory that records, per block,
// which caches hold copies (Censier & Feautrier's own proposal was a
// directory scheme). There is no broadcast medium; the directory sends
// point-to-point invalidations, one per cycle, and each must be
// acknowledged — so the cost of a write to widely shared data grows with
// the number of sharers even though unshared traffic no longer fights over
// a bus. This is precisely the trade the paper says cannot be escaped:
// "all such schemes inevitably introduce overhead and/or decrease
// parallelism".
type DirectorySystem struct {
	cfg Config
	// netLatency is the one-way point-to-point message latency.
	netLatency sim.Cycle

	caches [][]line
	stats  []CacheStats

	dir    map[uint32]*dirEntry
	memory map[uint32]int64

	reqs      [][]Access
	busy      []bool // cpu has an access in flight at the directory
	hitDone   []sim.Cycle
	dirQueue  []dirMsg
	dirBusyAt sim.Cycle
	// events holds in-flight point-to-point messages (requests travelling
	// to the directory, installs travelling back) ordered by (at, seq).
	// Typed rather than closure-based so a checkpoint can carry them.
	events  []dirEvent
	evSeq   uint64
	lruTick uint64
	pending int
	// settled marks the cycle through which DirQueueLen samples are
	// accounted, for lazy settlement of jumped-over cycles.
	settled sim.Cycle

	// InvalidationMsgs counts point-to-point invalidations sent; DirOps
	// counts directory occupancy events.
	InvalidationMsgs metrics.Counter
	DirOps           metrics.Counter
	// DirQueueLen samples the directory's input queue.
	DirQueueLen metrics.Gauge

	waker sim.Waker
}

// Attach receives the engine's waker (sim.Wakeable).
func (s *DirectorySystem) Attach(w sim.Waker) { s.waker = w }

type dirEntry struct {
	sharers map[int]bool
	owner   int // cpu holding the block Modified, or -1
}

type dirMsg struct {
	cpu int
	a   Access
}

// dirEvent is one in-flight network message: a request on its way to the
// directory (install=false, lands by appending to dirQueue) or a reply on
// its way back to the requester (install=true, lands by installing the
// block and completing the access).
type dirEvent struct {
	at      sim.Cycle
	seq     uint64
	install bool
	cpu     int
	a       Access
}

// schedule inserts an event keeping events sorted by (at, seq). seq grows
// monotonically, so inserting after every event with at <= t preserves
// dispatch order.
func (s *DirectorySystem) schedule(t sim.Cycle, install bool, cpu int, a Access) {
	s.evSeq++
	ev := dirEvent{at: t, seq: s.evSeq, install: install, cpu: cpu, a: a}
	i := len(s.events)
	for i > 0 && s.events[i-1].at > t {
		i--
	}
	s.events = append(s.events, dirEvent{})
	copy(s.events[i+1:], s.events[i:])
	s.events[i] = ev
}

// runEvents delivers every message that has landed by now, in (at, seq)
// order.
func (s *DirectorySystem) runEvents(now sim.Cycle) {
	for len(s.events) > 0 && s.events[0].at <= now {
		ev := s.events[0]
		copy(s.events, s.events[1:])
		s.events = s.events[:len(s.events)-1]
		if ev.install {
			s.install(ev.cpu, ev.a)
		} else {
			s.dirQueue = append(s.dirQueue, dirMsg{cpu: ev.cpu, a: ev.a})
		}
	}
}

// eventsNext reports the earliest in-flight message arrival, or Never.
func (s *DirectorySystem) eventsNext() sim.Cycle {
	if len(s.events) == 0 {
		return sim.Never
	}
	return s.events[0].at
}

// NewDirectorySystem returns a directory-coherent system for n processors
// with the given point-to-point latency.
func NewDirectorySystem(cfg Config, n int, netLatency sim.Cycle) *DirectorySystem {
	cfg = cfg.withDefaults()
	if netLatency < 1 {
		netLatency = 1
	}
	s := &DirectorySystem{
		cfg:        cfg,
		netLatency: netLatency,
		caches:     make([][]line, n),
		stats:      make([]CacheStats, n),
		dir:        map[uint32]*dirEntry{},
		memory:     map[uint32]int64{},
		reqs:       make([][]Access, n),
		busy:       make([]bool, n),
		hitDone:    make([]sim.Cycle, n),
	}
	for i := range s.caches {
		s.caches[i] = make([]line, cfg.Sets*cfg.Ways)
	}
	return s
}

// NumCPUs returns the processor count.
func (s *DirectorySystem) NumCPUs() int { return len(s.caches) }

// Stats returns processor i's cache statistics.
func (s *DirectorySystem) Stats(i int) *CacheStats { return &s.stats[i] }

// Request enqueues an access for processor cpu.
func (s *DirectorySystem) Request(cpu int, a Access) {
	s.reqs[cpu] = append(s.reqs[cpu], a)
	s.pending++
	if s.waker != nil {
		if t := s.NextEvent(s.waker.Now()); t != sim.Never {
			s.waker.Wake(s, t)
		}
	}
}

// Pending reports whether work remains.
func (s *DirectorySystem) Pending() bool { return s.pending > 0 }

// Poke initializes memory directly.
func (s *DirectorySystem) Poke(addr uint32, v int64) { s.memory[addr] = v }

// Peek reads memory directly (quiescent state only).
func (s *DirectorySystem) Peek(addr uint32) int64 { return s.memory[addr] }

func (s *DirectorySystem) blockOf(addr uint32) uint32 { return addr / uint32(s.cfg.BlockWords) }
func (s *DirectorySystem) setOf(block uint32) int     { return int(block) % s.cfg.Sets }

func (s *DirectorySystem) findLine(cpu int, block uint32) *line {
	set := s.setOf(block)
	for w := 0; w < s.cfg.Ways; w++ {
		l := &s.caches[cpu][set*s.cfg.Ways+w]
		if l.state != invalid && l.tag == block {
			return l
		}
	}
	return nil
}

func (s *DirectorySystem) victim(cpu int, block uint32) *line {
	set := s.setOf(block)
	var v *line
	for w := 0; w < s.cfg.Ways; w++ {
		l := &s.caches[cpu][set*s.cfg.Ways+w]
		if l.state == invalid {
			return l
		}
		if v == nil || l.lru < v.lru {
			v = l
		}
	}
	return v
}

func (s *DirectorySystem) entry(block uint32) *dirEntry {
	e := s.dir[block]
	if e == nil {
		e = &dirEntry{sharers: map[int]bool{}, owner: -1}
		s.dir[block] = e
	}
	return e
}

// Step advances one cycle.
func (s *DirectorySystem) Step(now sim.Cycle) {
	s.settleThrough(now)
	s.runEvents(now)
	s.DirQueueLen.Set(int64(len(s.dirQueue)))
	s.DirQueueLen.Sample()
	s.settled = now + 1

	// processors: hits complete locally, misses travel to the directory
	for cpu := range s.reqs {
		if len(s.reqs[cpu]) == 0 || s.busy[cpu] || now < s.hitDone[cpu] {
			continue
		}
		a := s.reqs[cpu][0]
		block := s.blockOf(a.Addr)
		l := s.findLine(cpu, block)
		if l != nil && (!a.Write && l.state != invalid || a.Write && l.state == modified) {
			s.stats[cpu].Hits.Inc()
			s.lruTick++
			l.lru = s.lruTick
			s.hitDone[cpu] = now + s.cfg.HitTime
			s.finish(cpu, a)
			continue
		}
		// miss or upgrade: message to the directory
		s.busy[cpu] = true
		s.schedule(now+s.netLatency, false, cpu, a)
	}

	// directory: serve one message per cycle
	if now >= s.dirBusyAt && len(s.dirQueue) > 0 {
		m := s.dirQueue[0]
		copy(s.dirQueue, s.dirQueue[1:])
		s.dirQueue = s.dirQueue[:len(s.dirQueue)-1]
		s.DirOps.Inc()
		s.serve(now, m)
		// Refresh the gauge's frozen level: jumped-over cycles observe the
		// post-pop queue length, exactly as per-cycle stepping would.
		s.DirQueueLen.Set(int64(len(s.dirQueue)))
	}
}

// NextEvent reports the earliest cycle the system can make progress: an
// in-flight message landing, the directory freeing with work queued, or a
// processor whose head request becomes serviceable (a non-busy processor
// with a pending head always makes progress when stepped — it either
// finishes a hit or dispatches to the directory).
func (s *DirectorySystem) NextEvent(now sim.Cycle) sim.Cycle {
	next := s.eventsNext()
	if len(s.dirQueue) > 0 {
		t := s.dirBusyAt
		if t < now {
			t = now
		}
		if t < next {
			next = t
		}
	}
	for cpu := range s.reqs {
		if len(s.reqs[cpu]) == 0 || s.busy[cpu] {
			continue
		}
		t := s.hitDone[cpu]
		if t < now {
			t = now
		}
		if t < next {
			next = t
		}
	}
	if next < now {
		next = now
	}
	return next
}

// settleThrough samples the frozen directory-queue length once per
// unaccounted cycle before t — exact for jumped-over cycles, during which
// no message can arrive or be served.
func (s *DirectorySystem) settleThrough(t sim.Cycle) {
	if t > s.settled {
		s.DirQueueLen.SampleN(uint64(t - s.settled))
		s.settled = t
	}
}

// Settle accounts queue-length samples for jumped-over cycles
// (sim.Settler).
func (s *DirectorySystem) Settle(through sim.Cycle) { s.settleThrough(through) }

// serve processes one directory request and schedules the reply.
func (s *DirectorySystem) serve(now sim.Cycle, m dirMsg) {
	block := s.blockOf(m.a.Addr)
	e := s.entry(block)
	extra := sim.Cycle(0)

	if m.a.Write {
		// invalidate every other copy, one message per cycle, each needing
		// a round trip for its acknowledgement
		nInv := 0
		if e.owner >= 0 && e.owner != m.cpu {
			if ol := s.findLine(e.owner, block); ol != nil {
				ol.state = invalid
				s.stats[e.owner].Invalidations.Inc()
				s.stats[e.owner].Writebacks.Inc()
			}
			s.InvalidationMsgs.Inc()
			nInv++
		}
		for sh := range e.sharers {
			if sh == m.cpu {
				continue
			}
			if ol := s.findLine(sh, block); ol != nil {
				ol.state = invalid
				s.stats[sh].Invalidations.Inc()
			}
			s.InvalidationMsgs.Inc()
			nInv++
		}
		// serialization (one invalidation per cycle) plus one ack round trip
		if nInv > 0 {
			extra = sim.Cycle(nInv) + 2*s.netLatency
		}
		hadCopy := e.sharers[m.cpu] || e.owner == m.cpu
		if !hadCopy {
			extra += s.cfg.MemTime
		}
		e.sharers = map[int]bool{}
		e.owner = m.cpu
	} else {
		if e.owner >= 0 && e.owner != m.cpu {
			// fetch from the owner: forward + reply, plus downgrade
			if ol := s.findLine(e.owner, block); ol != nil {
				ol.state = shared
				s.stats[e.owner].Writebacks.Inc()
			}
			e.sharers[e.owner] = true
			e.owner = -1
			extra = 2 * s.netLatency
		} else if e.owner != m.cpu {
			extra = s.cfg.MemTime
		}
		e.sharers[m.cpu] = true
	}
	// The directory serves the next request only after this one's install
	// lands: full serialization in place of transient protocol states.
	s.dirBusyAt = now + 1 + extra + s.netLatency

	s.schedule(now+extra+s.netLatency, true, m.cpu, m.a)
}

// install places the block in the requester's cache and completes.
func (s *DirectorySystem) install(cpu int, a Access) {
	block := s.blockOf(a.Addr)
	l := s.findLine(cpu, block)
	if l == nil {
		l = s.victim(cpu, block)
		if l.state == modified {
			s.stats[cpu].Writebacks.Inc()
			// eviction: remove ourselves from the directory for the old block
			old := s.entry(l.tag)
			if old.owner == cpu {
				old.owner = -1
			}
			delete(old.sharers, cpu)
		} else if l.state == shared {
			delete(s.entry(l.tag).sharers, cpu)
		}
		l.tag = block
		s.stats[cpu].Misses.Inc()
	} else {
		s.stats[cpu].Upgrades.Inc()
	}
	if a.Write {
		l.state = modified
	} else {
		l.state = shared
	}
	s.lruTick++
	l.lru = s.lruTick
	s.busy[cpu] = false
	s.finish(cpu, a)
}

// finish commits the data effect and pops the request.
func (s *DirectorySystem) finish(cpu int, a Access) {
	copy(s.reqs[cpu], s.reqs[cpu][1:])
	s.reqs[cpu] = s.reqs[cpu][:len(s.reqs[cpu])-1]
	s.pending--
	if a.Write {
		s.memory[a.Addr] = a.Value
		if a.Done != nil {
			a.Done(0)
		}
		return
	}
	if a.Done != nil {
		a.Done(s.memory[a.Addr])
	}
}

// CheckInvariant verifies the MSI single-writer invariant plus directory
// consistency: the directory's owner/sharer records match cache states.
func (s *DirectorySystem) CheckInvariant() error {
	for cpu := range s.caches {
		for i := range s.caches[cpu] {
			l := &s.caches[cpu][i]
			if l.state == invalid {
				continue
			}
			e := s.dir[l.tag]
			if e == nil {
				return fmt.Errorf("cache: cpu %d holds block %d unknown to the directory", cpu, l.tag)
			}
			switch l.state {
			case modified:
				if e.owner != cpu {
					return fmt.Errorf("cache: cpu %d modified block %d but directory owner is %d", cpu, l.tag, e.owner)
				}
			case shared:
				if !e.sharers[cpu] && e.owner != cpu {
					return fmt.Errorf("cache: cpu %d shares block %d without a directory record", cpu, l.tag)
				}
			}
		}
	}
	for block, e := range s.dir {
		if e.owner >= 0 {
			for sh := range e.sharers {
				if sh != e.owner {
					return fmt.Errorf("cache: block %d has owner %d and sharer %d simultaneously", block, e.owner, sh)
				}
			}
		}
	}
	return nil
}

// TotalInvalidations sums invalidations observed by caches.
func (s *DirectorySystem) TotalInvalidations() uint64 {
	var t uint64
	for i := range s.stats {
		t += s.stats[i].Invalidations.Value()
	}
	return t
}
