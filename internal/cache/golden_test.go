package cache

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simtest"
)

type cacheSnapshot struct {
	Cycles          uint64  `json:"cycles"`
	Hits            uint64  `json:"hits"`
	Misses          uint64  `json:"misses"`
	Upgrades        uint64  `json:"upgrades"`
	Invalidations   uint64  `json:"invalidations"`
	Writebacks      uint64  `json:"writebacks"`
	BusTransactions uint64  `json:"bus_transactions,omitempty"`
	BusBusyFrac     float64 `json:"bus_busy_frac,omitempty"`
	DirOps          uint64  `json:"dir_ops,omitempty"`
	InvMsgs         uint64  `json:"inv_msgs,omitempty"`
	DirQMeanPPM     uint64  `json:"dir_queue_mean_ppm,omitempty"`
	DirQMax         int64   `json:"dir_queue_max,omitempty"`
	MemChecksum     int64   `json:"mem_checksum"`
}

// goldenWorkload mirrors the E3 access pattern: hot shared words with 25%
// writes, driven to quiescence.
func goldenWorkload(request func(cpu int, a Access)) {
	rng := sim.NewRNG(42)
	const accessesPerCPU, cpus = 120, 4
	for i := 0; i < accessesPerCPU; i++ {
		for cpu := 0; cpu < cpus; cpu++ {
			addr := uint32(rng.Intn(8))
			request(cpu, Access{Addr: addr, Write: rng.Bool(0.25), Value: int64(i + cpu)})
		}
	}
}

// TestGoldenSnoopy pins the snoopy-bus system's cycle count and coherence
// traffic on the shared-hot-words workload.
func TestGoldenSnoopy(t *testing.T) {
	s := NewSystem(Config{}, 4)
	goldenWorkload(s.Request)
	eng := sim.NewEngine()
	eng.Register(s)
	elapsed, ok := eng.Run(func() bool { return !s.Pending() }, 50_000_000)
	if !ok {
		t.Fatal("snoopy system did not settle")
	}
	cycles := uint64(elapsed)
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	snap := cacheSnapshot{
		Cycles:          cycles,
		BusTransactions: s.BusTransactions.Value(),
		BusBusyFrac:     s.BusBusy.Fraction(),
	}
	for i := 0; i < s.NumCPUs(); i++ {
		st := s.Stats(i)
		snap.Hits += st.Hits.Value()
		snap.Misses += st.Misses.Value()
		snap.Upgrades += st.Upgrades.Value()
		snap.Invalidations += st.Invalidations.Value()
		snap.Writebacks += st.Writebacks.Value()
	}
	for a := uint32(0); a < 8; a++ {
		snap.MemChecksum += s.Peek(a) * int64(a+1)
	}
	simtest.Check(t, "testdata/golden_snoopy.json", snap)
}

// TestGoldenDirectory pins the directory system on the same workload.
func TestGoldenDirectory(t *testing.T) {
	s := NewDirectorySystem(Config{}, 4, 3)
	goldenWorkload(s.Request)
	eng := sim.NewEngine()
	eng.Register(s)
	elapsed, ok := eng.Run(func() bool { return !s.Pending() }, 50_000_000)
	if !ok {
		t.Fatal("directory system did not settle")
	}
	cycles := uint64(elapsed)
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	snap := cacheSnapshot{
		Cycles:      cycles,
		DirOps:      s.DirOps.Value(),
		InvMsgs:     s.InvalidationMsgs.Value(),
		DirQMeanPPM: uint64(s.DirQueueLen.Mean() * 1e6),
		DirQMax:     s.DirQueueLen.Max(),
	}
	for i := 0; i < s.NumCPUs(); i++ {
		st := s.Stats(i)
		snap.Hits += st.Hits.Value()
		snap.Misses += st.Misses.Value()
		snap.Upgrades += st.Upgrades.Value()
		snap.Invalidations += st.Invalidations.Value()
		snap.Writebacks += st.Writebacks.Value()
	}
	for a := uint32(0); a < 8; a++ {
		snap.MemChecksum += s.Peek(a) * int64(a+1)
	}
	simtest.Check(t, "testdata/golden_directory.json", snap)
}
