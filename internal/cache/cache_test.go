package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// settle runs the system on a fresh engine until no request is pending.
func settle(t *testing.T, s *System, limit int) int {
	t.Helper()
	eng := sim.NewEngine()
	eng.Register(s)
	elapsed, ok := eng.Run(func() bool { return !s.Pending() }, sim.Cycle(limit))
	if !ok {
		t.Fatalf("cache system did not settle in %d cycles", limit)
	}
	return int(elapsed)
}

func TestReadMissThenHit(t *testing.T) {
	s := NewSystem(Config{}, 1)
	s.Poke(100, 7)
	var got int64
	s.Request(0, Access{Addr: 100, Done: func(v int64) { got = v }})
	settle(t, s, 1000)
	if got != 7 {
		t.Fatalf("read = %d", got)
	}
	if s.Stats(0).Misses.Value() != 1 {
		t.Fatal("first access must miss")
	}
	s.Request(0, Access{Addr: 100, Done: func(v int64) { got = v }})
	settle(t, s, 1000)
	if s.Stats(0).Hits.Value() != 1 {
		t.Fatal("second access must hit")
	}
}

func TestSpatialLocalityWithinBlock(t *testing.T) {
	s := NewSystem(Config{BlockWords: 4}, 1)
	for a := uint32(0); a < 4; a++ {
		s.Request(0, Access{Addr: a, Done: func(int64) {}})
	}
	settle(t, s, 1000)
	if s.Stats(0).Misses.Value() != 1 || s.Stats(0).Hits.Value() != 3 {
		t.Fatalf("block locality: %d misses, %d hits",
			s.Stats(0).Misses.Value(), s.Stats(0).Hits.Value())
	}
}

func TestWriteInvalidatesOtherCopies(t *testing.T) {
	// The Censier-Feautrier requirement: a write to x must invalidate all
	// other cached copies of x.
	s := NewSystem(Config{}, 3)
	for cpu := 0; cpu < 3; cpu++ {
		s.Request(cpu, Access{Addr: 50, Done: func(int64) {}})
	}
	settle(t, s, 1000)
	s.Request(0, Access{Addr: 50, Write: true, Value: 9, Done: func(int64) {}})
	settle(t, s, 1000)
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if s.TotalInvalidations() != 2 {
		t.Fatalf("invalidations = %d, want 2", s.TotalInvalidations())
	}
	// Readers must now miss and see the new value.
	var got int64
	s.Request(1, Access{Addr: 50, Done: func(v int64) { got = v }})
	settle(t, s, 1000)
	if got != 9 {
		t.Fatalf("reader saw %d, want 9", got)
	}
	if s.Stats(1).Misses.Value() != 2 {
		t.Fatalf("invalidated reader must re-miss: %d misses", s.Stats(1).Misses.Value())
	}
}

func TestUpgradeCountsSeparately(t *testing.T) {
	s := NewSystem(Config{}, 2)
	s.Request(0, Access{Addr: 10, Done: func(int64) {}})
	s.Request(1, Access{Addr: 10, Done: func(int64) {}})
	settle(t, s, 1000)
	s.Request(0, Access{Addr: 10, Write: true, Value: 1, Done: func(int64) {}})
	settle(t, s, 1000)
	if s.Stats(0).Upgrades.Value() != 1 {
		t.Fatalf("S→M must count as upgrade, got %d", s.Stats(0).Upgrades.Value())
	}
	if s.Stats(1).Invalidations.Value() != 1 {
		t.Fatal("peer copy must be invalidated on upgrade")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	// 1 set, 1 way: the second block evicts the first; a dirty line must
	// write back.
	s := NewSystem(Config{Sets: 1, Ways: 1, BlockWords: 1}, 1)
	s.Request(0, Access{Addr: 0, Write: true, Value: 5, Done: func(int64) {}})
	settle(t, s, 1000)
	s.Request(0, Access{Addr: 1, Done: func(int64) {}})
	settle(t, s, 1000)
	if s.Stats(0).Writebacks.Value() != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Stats(0).Writebacks.Value())
	}
	var got int64
	s.Request(0, Access{Addr: 0, Done: func(v int64) { got = v }})
	settle(t, s, 1000)
	if got != 5 {
		t.Fatalf("evicted dirty data lost: %d", got)
	}
}

func TestPingPongSharingCostsBusTransactions(t *testing.T) {
	// Two processors alternately writing one cell ping-pong the line: every
	// write needs the bus, unlike private data which hits after the first.
	shared := NewSystem(Config{}, 2)
	for i := 0; i < 20; i++ {
		cpu := i % 2
		shared.Request(cpu, Access{Addr: 7, Write: true, Value: int64(i), Done: func(int64) {}})
		settle(t, shared, 10000)
	}
	private := NewSystem(Config{}, 2)
	for i := 0; i < 20; i++ {
		cpu := i % 2
		private.Request(cpu, Access{Addr: uint32(7 + cpu*1000), Write: true, Value: int64(i), Done: func(int64) {}})
		settle(t, private, 10000)
	}
	if shared.BusTransactions.Value() <= 2*private.BusTransactions.Value() {
		t.Fatalf("ping-pong sharing should dominate bus traffic: shared=%d private=%d",
			shared.BusTransactions.Value(), private.BusTransactions.Value())
	}
	if err := shared.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceSerializesSharedWrites(t *testing.T) {
	// More sharers make the same per-processor write workload slower: the
	// serialization cost the paper predicts.
	cyclesFor := func(p int) int {
		s := NewSystem(Config{}, p)
		// every processor writes the same cell 10 times
		for round := 0; round < 10; round++ {
			for cpu := 0; cpu < p; cpu++ {
				s.Request(cpu, Access{Addr: 3, Write: true, Value: 1, Done: func(int64) {}})
			}
		}
		return settle(t, s, 1_000_000)
	}
	c2, c8 := cyclesFor(2), cyclesFor(8)
	if c8 <= c2*2 {
		t.Fatalf("8 sharers (%d cycles) should cost far more than 2 (%d cycles)", c8, c2)
	}
}

func TestLastWriteWins(t *testing.T) {
	// Sequential writes from different processors: a final read sees the
	// last committed value.
	s := NewSystem(Config{}, 4)
	for i := 0; i < 4; i++ {
		s.Request(i, Access{Addr: 11, Write: true, Value: int64(100 + i), Done: func(int64) {}})
		settle(t, s, 10000)
	}
	var got int64
	s.Request(0, Access{Addr: 11, Done: func(v int64) { got = v }})
	settle(t, s, 10000)
	if got != 103 {
		t.Fatalf("read %d, want 103", got)
	}
}

func TestInvariantHoldsUnderRandomTraffic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		s := NewSystem(Config{Sets: 4, Ways: 2, BlockWords: 2}, 4)
		issued := 0
		var invErr error
		eng := sim.NewEngine()
		// The injector is not event-aware, so the engine degrades to
		// exhaustive per-cycle stepping: the rng draw sequence is identical
		// to the hand-rolled loop this replaces.
		eng.Register(sim.ComponentFunc(func(now sim.Cycle) {
			if issued < 200 && rng.Bool(0.3) {
				cpu := rng.Intn(4)
				s.Request(cpu, Access{
					Addr:  uint32(rng.Intn(32)),
					Write: rng.Bool(0.5),
					Value: int64(rng.Intn(1000)),
				})
				issued++
			}
		}))
		eng.Register(s)
		eng.Register(sim.ComponentFunc(func(now sim.Cycle) {
			if invErr == nil {
				invErr = s.CheckInvariant()
			}
		}))
		eng.Run(func() bool { return invErr != nil }, 3000)
		return invErr == nil
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateStat(t *testing.T) {
	s := NewSystem(Config{}, 1)
	s.Request(0, Access{Addr: 0, Done: func(int64) {}})
	settle(t, s, 100)
	s.Request(0, Access{Addr: 0, Done: func(int64) {}})
	settle(t, s, 100)
	if mr := s.Stats(0).MissRate(); mr != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", mr)
	}
}
