package cache

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Checkpoint format for the cache package. Both coherence systems carry
// their complete dynamic state — cache lines, request queues, in-flight
// messages, bus or directory occupancy, and metrics — so a restored system
// continues bit-identically. Static configuration (Config, processor
// count, network latency) is written only as a shape check: a checkpoint
// refuses to load into a differently-built system.
//
// Access.Done callbacks cannot be serialized. Every in-tree driver issues
// accesses with Done == nil (completion is observed through memory and
// statistics); SaveState panics on a non-nil Done rather than silently
// dropping the callback.

func saveAccess(e *sim.Enc, a Access) {
	if a.Done != nil {
		panic("cache: cannot checkpoint an Access with a Done callback")
	}
	e.U32(a.Addr)
	e.Bool(a.Write)
	e.I64(a.Value)
}

func loadAccess(d *sim.Dec) Access {
	return Access{Addr: d.U32(), Write: d.Bool(), Value: d.I64()}
}

func sameAccess(a, b Access) bool {
	return a.Addr == b.Addr && a.Write == b.Write && a.Value == b.Value
}

func saveCaches(e *sim.Enc, caches [][]line) {
	for cpu := range caches {
		for i := range caches[cpu] {
			l := &caches[cpu][i]
			e.U8(uint8(l.state))
			e.U32(l.tag)
			e.U64(l.lru)
		}
	}
}

func loadCaches(d *sim.Dec, caches [][]line, lruTick uint64) {
	for cpu := range caches {
		for i := range caches[cpu] {
			l := &caches[cpu][i]
			st := d.U8()
			if st > uint8(modified) {
				d.Failf("cpu %d line %d: bad state %d", cpu, i, st)
				return
			}
			l.state = lineState(st)
			l.tag = d.U32()
			l.lru = d.U64()
			if l.lru > lruTick {
				d.Failf("cpu %d line %d: lru %d beyond tick %d", cpu, i, l.lru, lruTick)
				return
			}
		}
	}
}

func saveCacheStats(e *sim.Enc, st *CacheStats) {
	st.Hits.Save(e)
	st.Misses.Save(e)
	st.Upgrades.Save(e)
	st.Invalidations.Save(e)
	st.Writebacks.Save(e)
}

func loadCacheStats(d *sim.Dec, st *CacheStats) {
	st.Hits.Load(d)
	st.Misses.Load(d)
	st.Upgrades.Load(d)
	st.Invalidations.Load(d)
	st.Writebacks.Load(d)
}

// saveShape writes the construction parameters shared by both systems; the
// loader validates them against the receiving instance.
func saveShape(e *sim.Enc, cfg Config, n int) {
	e.Int(n)
	e.Int(cfg.Sets)
	e.Int(cfg.Ways)
	e.Int(cfg.BlockWords)
	e.Cycle(cfg.BusTime)
	e.Cycle(cfg.MemTime)
	e.Cycle(cfg.HitTime)
}

func checkShape(d *sim.Dec, cfg Config, n int) error {
	if got := d.Int(); got != n {
		return fmt.Errorf("checkpoint: cache: %d cpus, machine has %d", got, n)
	}
	want := []struct {
		name string
		v    int64
	}{
		{"sets", int64(cfg.Sets)},
		{"ways", int64(cfg.Ways)},
		{"blockwords", int64(cfg.BlockWords)},
		{"bustime", int64(cfg.BusTime)},
		{"memtime", int64(cfg.MemTime)},
		{"hittime", int64(cfg.HitTime)},
	}
	for _, w := range want {
		if got := d.I64(); got != w.v {
			return fmt.Errorf("checkpoint: cache: %s %d, machine has %d", w.name, got, w.v)
		}
	}
	return d.Err()
}

func saveMemory(e *sim.Enc, mem map[uint32]int64) {
	sim.SaveU32Map(e, mem, func(e *sim.Enc, v int64) { e.I64(v) })
}

func loadMemory(d *sim.Dec, mem map[uint32]int64) error {
	for k := range mem {
		delete(mem, k)
	}
	return sim.LoadU32Map(d, mem, func(d *sim.Dec) int64 { return d.I64() })
}

func saveReqs(e *sim.Enc, reqs [][]Access) {
	for cpu := range reqs {
		e.Len(len(reqs[cpu]))
		for _, a := range reqs[cpu] {
			saveAccess(e, a)
		}
	}
}

func loadReqs(d *sim.Dec, reqs [][]Access) {
	for cpu := range reqs {
		n := d.Len(1 << 20)
		reqs[cpu] = reqs[cpu][:0]
		for i := 0; i < n; i++ {
			reqs[cpu] = append(reqs[cpu], loadAccess(d))
		}
	}
}

// SaveState serializes the snoopy-bus system (sim.Stateful).
func (s *System) SaveState(e *sim.Enc) {
	e.Tag("cachesys", 1)
	saveShape(e, s.cfg, len(s.caches))
	saveCaches(e, s.caches)
	for i := range s.stats {
		saveCacheStats(e, &s.stats[i])
	}
	saveMemory(e, s.memory)
	saveReqs(e, s.reqs)
	for _, t := range s.hitDone {
		e.Cycle(t)
	}
	e.Cycle(s.busBusyUntil)
	e.Int(s.busRR)
	e.Int(s.busOwner)
	e.Cycle(s.busDoneAt)
	e.U64(s.lruTick)
	e.Cycle(s.settled)
	s.BusTransactions.Save(e)
	s.BusBusy.Save(e)
}

// LoadState restores the snoopy-bus system (sim.Stateful).
func (s *System) LoadState(d *sim.Dec) error {
	if err := d.Tag("cachesys", 1); err != nil {
		return err
	}
	if err := checkShape(d, s.cfg, len(s.caches)); err != nil {
		return err
	}
	n := len(s.caches)
	lines := make([][]line, n)
	for i := range lines {
		lines[i] = make([]line, s.cfg.Sets*s.cfg.Ways)
	}
	stats := make([]CacheStats, n)
	memory := map[uint32]int64{}
	reqs := make([][]Access, n)
	hitDone := make([]sim.Cycle, n)

	// lruTick is written after the lines, so the lru bound is checked once
	// everything is decoded.
	loadCaches(d, lines, ^uint64(0))
	for i := range stats {
		loadCacheStats(d, &stats[i])
	}
	if err := loadMemory(d, memory); err != nil {
		return err
	}
	loadReqs(d, reqs)
	for i := range hitDone {
		hitDone[i] = d.Cycle()
	}
	busBusyUntil := d.Cycle()
	busRR := d.Int()
	busOwner := d.Int()
	busDoneAt := d.Cycle()
	lruTick := d.U64()
	settled := d.Cycle()
	s.BusTransactions.Load(d)
	s.BusBusy.Load(d)
	if err := d.Err(); err != nil {
		return err
	}

	if busRR < 0 || busRR >= n {
		return fmt.Errorf("checkpoint: cache: bus round-robin %d out of range", busRR)
	}
	if busOwner < -1 || busOwner >= n {
		return fmt.Errorf("checkpoint: cache: bus owner %d out of range", busOwner)
	}
	if busOwner >= 0 && len(reqs[busOwner]) == 0 {
		return fmt.Errorf("checkpoint: cache: bus owner %d has no pending access", busOwner)
	}
	for cpu := range lines {
		for i := range lines[cpu] {
			if lines[cpu][i].lru > lruTick {
				return fmt.Errorf("checkpoint: cache: cpu %d line %d lru %d beyond tick %d", cpu, i, lines[cpu][i].lru, lruTick)
			}
		}
	}

	s.caches = lines
	s.stats = stats
	s.memory = memory
	s.reqs = reqs
	s.hitDone = hitDone
	s.busBusyUntil = busBusyUntil
	s.busRR = busRR
	s.busOwner = busOwner
	s.busDoneAt = busDoneAt
	s.lruTick = lruTick
	s.settled = settled
	if err := s.CheckInvariant(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// SaveState serializes the directory system (sim.Stateful).
func (s *DirectorySystem) SaveState(e *sim.Enc) {
	e.Tag("cachedir", 1)
	saveShape(e, s.cfg, len(s.caches))
	e.Cycle(s.netLatency)
	saveCaches(e, s.caches)
	for i := range s.stats {
		saveCacheStats(e, &s.stats[i])
	}

	// Directory entries, sorted by block. Entries with no owner and no
	// sharers carry no information (entry() recreates them on demand), so
	// they are skipped — the dump is canonical regardless of access
	// history.
	blocks := make([]uint32, 0, len(s.dir))
	for b, de := range s.dir {
		if de.owner >= 0 || len(de.sharers) > 0 {
			blocks = append(blocks, b)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	e.Len(len(blocks))
	for _, b := range blocks {
		de := s.dir[b]
		e.U32(b)
		e.Int(de.owner)
		sh := make([]int, 0, len(de.sharers))
		for cpu := range de.sharers {
			sh = append(sh, cpu)
		}
		sort.Ints(sh)
		e.Len(len(sh))
		for _, cpu := range sh {
			e.Int(cpu)
		}
	}

	saveMemory(e, s.memory)
	saveReqs(e, s.reqs)
	for _, t := range s.hitDone {
		e.Cycle(t)
	}
	e.Len(len(s.dirQueue))
	for _, m := range s.dirQueue {
		e.Int(m.cpu)
		saveAccess(e, m.a)
	}
	e.Cycle(s.dirBusyAt)
	e.U64(s.evSeq)
	e.Len(len(s.events))
	for _, ev := range s.events {
		e.Cycle(ev.at)
		e.U64(ev.seq)
		e.Bool(ev.install)
		e.Int(ev.cpu)
		saveAccess(e, ev.a)
	}
	e.U64(s.lruTick)
	e.Cycle(s.settled)
	s.InvalidationMsgs.Save(e)
	s.DirOps.Save(e)
	s.DirQueueLen.Save(e)
}

// LoadState restores the directory system (sim.Stateful). The busy flags
// and the pending count are not in the stream: each is re-derived — a cpu
// is busy exactly when one in-flight message (directory queue entry or
// network event) carries its access, and pending is the total queued
// request count — and the derivation doubles as a consistency check.
func (s *DirectorySystem) LoadState(d *sim.Dec) error {
	if err := d.Tag("cachedir", 1); err != nil {
		return err
	}
	if err := checkShape(d, s.cfg, len(s.caches)); err != nil {
		return err
	}
	if lat := d.Cycle(); lat != s.netLatency {
		return fmt.Errorf("checkpoint: cache: net latency %d, machine has %d", lat, s.netLatency)
	}
	n := len(s.caches)
	lines := make([][]line, n)
	for i := range lines {
		lines[i] = make([]line, s.cfg.Sets*s.cfg.Ways)
	}
	stats := make([]CacheStats, n)
	loadCaches(d, lines, ^uint64(0))
	for i := range stats {
		loadCacheStats(d, &stats[i])
	}

	dir := map[uint32]*dirEntry{}
	nDir := d.Len(1 << 24)
	prevBlock := uint32(0)
	for i := 0; i < nDir; i++ {
		b := d.U32()
		if i > 0 && b <= prevBlock {
			return fmt.Errorf("checkpoint: cache: directory blocks out of order at %d", b)
		}
		prevBlock = b
		de := &dirEntry{sharers: map[int]bool{}, owner: d.Int()}
		if de.owner < -1 || de.owner >= n {
			return fmt.Errorf("checkpoint: cache: block %d owner %d out of range", b, de.owner)
		}
		nSh := d.Len(n)
		prevSh := -1
		for j := 0; j < nSh; j++ {
			cpu := d.Int()
			if cpu <= prevSh || cpu >= n {
				return fmt.Errorf("checkpoint: cache: block %d sharer %d invalid", b, cpu)
			}
			prevSh = cpu
			de.sharers[cpu] = true
		}
		if de.owner < 0 && nSh == 0 {
			return fmt.Errorf("checkpoint: cache: block %d directory entry is empty", b)
		}
		dir[b] = de
	}

	memory := map[uint32]int64{}
	if err := loadMemory(d, memory); err != nil {
		return err
	}
	reqs := make([][]Access, n)
	loadReqs(d, reqs)
	hitDone := make([]sim.Cycle, n)
	for i := range hitDone {
		hitDone[i] = d.Cycle()
	}

	busy := make([]bool, n)
	inFlight := func(cpu int, a Access, what string) error {
		if cpu < 0 || cpu >= n {
			return fmt.Errorf("checkpoint: cache: %s cpu %d out of range", what, cpu)
		}
		if busy[cpu] {
			return fmt.Errorf("checkpoint: cache: cpu %d has two in-flight messages", cpu)
		}
		if len(reqs[cpu]) == 0 || !sameAccess(reqs[cpu][0], a) {
			return fmt.Errorf("checkpoint: cache: %s for cpu %d does not match its head request", what, cpu)
		}
		busy[cpu] = true
		return nil
	}

	nQ := d.Len(n)
	dirQueue := make([]dirMsg, 0, nQ)
	for i := 0; i < nQ; i++ {
		m := dirMsg{cpu: d.Int(), a: loadAccess(d)}
		if d.Err() != nil {
			return d.Err()
		}
		if err := inFlight(m.cpu, m.a, "directory queue entry"); err != nil {
			return err
		}
		dirQueue = append(dirQueue, m)
	}
	dirBusyAt := d.Cycle()

	evSeq := d.U64()
	nEv := d.Len(n)
	events := make([]dirEvent, 0, nEv)
	for i := 0; i < nEv; i++ {
		ev := dirEvent{at: d.Cycle(), seq: d.U64(), install: d.Bool(), cpu: d.Int()}
		ev.a = loadAccess(d)
		if d.Err() != nil {
			return d.Err()
		}
		if ev.seq == 0 || ev.seq > evSeq {
			return fmt.Errorf("checkpoint: cache: event seq %d out of range", ev.seq)
		}
		if i > 0 {
			prev := events[i-1]
			if ev.at < prev.at || (ev.at == prev.at && ev.seq <= prev.seq) {
				return fmt.Errorf("checkpoint: cache: events out of dispatch order at %d", i)
			}
		}
		if err := inFlight(ev.cpu, ev.a, "in-flight message"); err != nil {
			return err
		}
		events = append(events, ev)
	}

	lruTick := d.U64()
	settled := d.Cycle()
	s.InvalidationMsgs.Load(d)
	s.DirOps.Load(d)
	s.DirQueueLen.Load(d)
	if err := d.Err(); err != nil {
		return err
	}
	for cpu := range lines {
		for i := range lines[cpu] {
			if lines[cpu][i].lru > lruTick {
				return fmt.Errorf("checkpoint: cache: cpu %d line %d lru %d beyond tick %d", cpu, i, lines[cpu][i].lru, lruTick)
			}
		}
	}
	pending := 0
	for cpu := range reqs {
		pending += len(reqs[cpu])
	}

	s.caches = lines
	s.stats = stats
	s.dir = dir
	s.memory = memory
	s.reqs = reqs
	s.busy = busy
	s.hitDone = hitDone
	s.dirQueue = dirQueue
	s.dirBusyAt = dirBusyAt
	s.events = events
	s.evSeq = evSeq
	s.lruTick = lruTick
	s.pending = pending
	s.settled = settled
	if err := s.CheckInvariant(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

var (
	_ sim.Stateful = (*System)(nil)
	_ sim.Stateful = (*DirectorySystem)(nil)
)
