package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// settleDir runs from the system's current clock (the system's time is
// monotonic, so repeated settles must not restart at cycle 0; settled is
// one past the last stepped cycle).
func settleDir(t *testing.T, s *DirectorySystem, limit int) int {
	t.Helper()
	eng := sim.NewEngine()
	eng.Register(s)
	eng.Advance(s.settled)
	elapsed, ok := eng.Run(func() bool { return !s.Pending() }, sim.Cycle(limit))
	if !ok {
		t.Fatalf("directory system did not settle in %d cycles", limit)
	}
	return int(elapsed)
}

func TestDirectoryReadMissThenHit(t *testing.T) {
	s := NewDirectorySystem(Config{}, 2, 4)
	s.Poke(10, 77)
	var got int64
	s.Request(0, Access{Addr: 10, Done: func(v int64) { got = v }})
	settleDir(t, s, 1000)
	if got != 77 || s.Stats(0).Misses.Value() != 1 {
		t.Fatalf("got %d, misses %d", got, s.Stats(0).Misses.Value())
	}
	s.Request(0, Access{Addr: 10, Done: func(v int64) { got = v }})
	settleDir(t, s, 1000)
	if s.Stats(0).Hits.Value() != 1 {
		t.Fatal("second read must hit")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryWriteInvalidatesSharers(t *testing.T) {
	s := NewDirectorySystem(Config{}, 4, 4)
	for cpu := 0; cpu < 4; cpu++ {
		s.Request(cpu, Access{Addr: 5, Done: func(int64) {}})
	}
	settleDir(t, s, 2000)
	s.Request(0, Access{Addr: 5, Write: true, Value: 3, Done: func(int64) {}})
	settleDir(t, s, 2000)
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if s.InvalidationMsgs.Value() != 3 {
		t.Fatalf("invalidation messages = %d, want 3", s.InvalidationMsgs.Value())
	}
	var got int64
	s.Request(2, Access{Addr: 5, Done: func(v int64) { got = v }})
	settleDir(t, s, 2000)
	if got != 3 {
		t.Fatalf("invalidated reader saw %d", got)
	}
}

func TestDirectoryOwnerForwarding(t *testing.T) {
	s := NewDirectorySystem(Config{}, 2, 4)
	s.Request(0, Access{Addr: 7, Write: true, Value: 9, Done: func(int64) {}})
	settleDir(t, s, 2000)
	var got int64
	s.Request(1, Access{Addr: 7, Done: func(v int64) { got = v }})
	settleDir(t, s, 2000)
	if got != 9 {
		t.Fatalf("read from owner = %d", got)
	}
	if s.Stats(0).Writebacks.Value() != 1 {
		t.Fatal("owner must be downgraded with a writeback")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryInvalidationCostGrowsWithSharers(t *testing.T) {
	// The write latency to a block shared by k caches grows with k: the
	// point-to-point serialization the paper's scaling argument predicts.
	costFor := func(k int) int {
		s := NewDirectorySystem(Config{}, k+1, 4)
		for cpu := 1; cpu <= k; cpu++ {
			s.Request(cpu, Access{Addr: 9, Done: func(int64) {}})
		}
		settleDir(t, s, 100000)
		s.Request(0, Access{Addr: 9, Write: true, Value: 1, Done: func(int64) {}})
		eng := sim.NewEngine()
		eng.Register(s)
		eng.Advance(100000)
		elapsed, ok := eng.Run(func() bool { return !s.Pending() }, 100000)
		if !ok {
			t.Fatal("write did not complete")
		}
		return int(elapsed)
	}
	c2, c16 := costFor(2), costFor(16)
	if c16 <= c2 {
		t.Fatalf("invalidating 16 sharers (%d cycles) must cost more than 2 (%d)", c16, c2)
	}
}

func TestDirectoryPrivateDataScales(t *testing.T) {
	// Unshared traffic does not contend: per-access cost stays flat as
	// processors are added... up to the serialized directory itself.
	costFor := func(p int) float64 {
		s := NewDirectorySystem(Config{}, p, 2)
		const each = 40
		for i := 0; i < each; i++ {
			for cpu := 0; cpu < p; cpu++ {
				s.Request(cpu, Access{Addr: uint32(1000 + cpu*64 + i%4), Write: i%4 == 0, Value: 1})
			}
		}
		cycles := settleDir(t, s, 1_000_000)
		return float64(cycles) / float64(each*p)
	}
	c1, c8 := costFor(1), costFor(8)
	if c8 > c1*4 {
		t.Fatalf("private data should scale: 1p=%.1f 8p=%.1f cycles/access", c1, c8)
	}
}

func TestDirectoryInvariantUnderRandomTraffic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		s := NewDirectorySystem(Config{Sets: 4, Ways: 2, BlockWords: 2}, 4, 3)
		issued := 0
		var invErr error
		eng := sim.NewEngine()
		// Non-event-aware injector: the engine steps every cycle, keeping
		// the rng draw sequence identical to the hand-rolled loop.
		eng.Register(sim.ComponentFunc(func(now sim.Cycle) {
			if issued < 150 && rng.Bool(0.2) {
				s.Request(rng.Intn(4), Access{
					Addr:  uint32(rng.Intn(24)),
					Write: rng.Bool(0.4),
					Value: int64(rng.Intn(100)),
				})
				issued++
			}
		}))
		eng.Register(s)
		eng.Register(sim.ComponentFunc(func(now sim.Cycle) {
			if invErr == nil {
				invErr = s.CheckInvariant()
			}
		}))
		eng.Run(func() bool { return invErr != nil }, 5000)
		return invErr == nil && !s.Pending()
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryLastWriteWins(t *testing.T) {
	s := NewDirectorySystem(Config{}, 4, 3)
	for i := 0; i < 4; i++ {
		s.Request(i, Access{Addr: 11, Write: true, Value: int64(100 + i)})
		settleDir(t, s, 100000)
	}
	var got int64
	s.Request(0, Access{Addr: 11, Done: func(v int64) { got = v }})
	settleDir(t, s, 100000)
	if got != 103 {
		t.Fatalf("read %d, want 103", got)
	}
}
