package cache

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simtest"
)

// NextEvent honesty for the coherence models: a random preloaded workload
// must produce identical cycle counts and statistics whether the system is
// stepped exhaustively every cycle (sim.Scheduler.Run) or driven by the
// event-driven engine (sim.Engine.Run). The workload is queued up front so
// both runs see exactly the same request stream.

type cacheOutcome struct {
	elapsed  sim.Cycle
	ok       bool
	hits     uint64
	misses   uint64
	upgrades uint64
	invals   uint64
	wbacks   uint64
	sum      int64
}

type accessStream struct {
	cpu []int
	acc []Access
}

func randomStream(rng *sim.RNG, cpus, n int) accessStream {
	var st accessStream
	for i := 0; i < n; i++ {
		st.cpu = append(st.cpu, rng.Intn(cpus))
		st.acc = append(st.acc, Access{
			Addr:  uint32(rng.Intn(40)),
			Write: rng.Bool(0.4),
			Value: int64(rng.Intn(1000)),
		})
	}
	return st
}

func statsOutcome(elapsed sim.Cycle, ok bool, cpus int, stats func(int) *CacheStats, sum int64) cacheOutcome {
	o := cacheOutcome{elapsed: elapsed, ok: ok, sum: sum}
	for i := 0; i < cpus; i++ {
		s := stats(i)
		o.hits += s.Hits.Value()
		o.misses += s.Misses.Value()
		o.upgrades += s.Upgrades.Value()
		o.invals += s.Invalidations.Value()
		o.wbacks += s.Writebacks.Value()
	}
	return o
}

func runSnoopyOnce(st accessStream, cpus int, evented bool) (cacheOutcome, uint64, float64) {
	s := NewSystem(Config{Sets: 4, Ways: 2, BlockWords: 2}, cpus)
	var sum int64
	for i := range st.acc {
		a := st.acc[i]
		a.Done = func(v int64) { sum = sum*31 + v }
		s.Request(st.cpu[i], a)
	}
	done := func() bool { return !s.Pending() }
	var elapsed sim.Cycle
	var ok bool
	if evented {
		eng := sim.NewEngine()
		eng.Register(s)
		elapsed, ok = eng.Run(done, 1_000_000)
	} else {
		sch := sim.NewScheduler()
		sch.Register(s)
		elapsed, ok = sch.Run(done, 1_000_000)
	}
	o := statsOutcome(elapsed, ok, cpus, s.Stats, sum)
	return o, s.BusTransactions.Value(), s.BusBusy.Fraction()
}

func runDirectoryOnce(st accessStream, cpus int, netLat sim.Cycle, evented bool) (cacheOutcome, uint64, int64, float64) {
	s := NewDirectorySystem(Config{Sets: 4, Ways: 2, BlockWords: 2}, cpus, netLat)
	var sum int64
	for i := range st.acc {
		a := st.acc[i]
		a.Done = func(v int64) { sum = sum*31 + v }
		s.Request(st.cpu[i], a)
	}
	done := func() bool { return !s.Pending() }
	var elapsed sim.Cycle
	var ok bool
	if evented {
		eng := sim.NewEngine()
		eng.Register(s)
		elapsed, ok = eng.Run(done, 1_000_000)
	} else {
		sch := sim.NewScheduler()
		sch.Register(s)
		elapsed, ok = sch.Run(done, 1_000_000)
	}
	o := statsOutcome(elapsed, ok, cpus, s.Stats, sum)
	return o, s.DirOps.Value(), s.DirQueueLen.Max(), s.DirQueueLen.Mean()
}

// runSnoopySkipping is runSnoopyOnce under exhaustive stepping with the
// system wrapped in simtest.IdleSkipper: Steps its own NextEvent declares
// idle are suppressed, which must not change any observable.
func runSnoopySkipping(st accessStream, cpus int) (cacheOutcome, uint64, float64, uint64) {
	s := NewSystem(Config{Sets: 4, Ways: 2, BlockWords: 2}, cpus)
	var sum int64
	for i := range st.acc {
		a := st.acc[i]
		a.Done = func(v int64) { sum = sum*31 + v }
		s.Request(st.cpu[i], a)
	}
	skip := simtest.NewIdleSkipper(s)
	sch := sim.NewScheduler()
	sch.Register(skip)
	elapsed, ok := sch.Run(func() bool { return !s.Pending() }, 1_000_000)
	skip.Settle(sch.Now())
	o := statsOutcome(elapsed, ok, cpus, s.Stats, sum)
	return o, s.BusTransactions.Value(), s.BusBusy.Fraction(), skip.Skipped
}

// runDirectorySkipping is the directory-protocol variant.
func runDirectorySkipping(st accessStream, cpus int, netLat sim.Cycle) (cacheOutcome, uint64, int64, float64, uint64) {
	s := NewDirectorySystem(Config{Sets: 4, Ways: 2, BlockWords: 2}, cpus, netLat)
	var sum int64
	for i := range st.acc {
		a := st.acc[i]
		a.Done = func(v int64) { sum = sum*31 + v }
		s.Request(st.cpu[i], a)
	}
	skip := simtest.NewIdleSkipper(s)
	sch := sim.NewScheduler()
	sch.Register(skip)
	elapsed, ok := sch.Run(func() bool { return !s.Pending() }, 1_000_000)
	skip.Settle(sch.Now())
	o := statsOutcome(elapsed, ok, cpus, s.Stats, sum)
	return o, s.DirOps.Value(), s.DirQueueLen.Max(), s.DirQueueLen.Mean(), skip.Skipped
}

// TestSnoopyIdleStepIsANoOp pins "NextEvent(now) > now implies Step(now)
// is a no-op" for the snoopy system on random workloads.
func TestSnoopyIdleStepIsANoOp(t *testing.T) {
	var totalSkipped uint64
	for seed := uint64(0); seed < 20; seed++ {
		rng := sim.NewRNG(0x1d1e + seed)
		cpus := 1 + rng.Intn(4)
		st := randomStream(rng, cpus, 30+rng.Intn(80))
		exOut, exBus, exFrac := runSnoopyOnce(st, cpus, false)
		skOut, skBus, skFrac, skipped := runSnoopySkipping(st, cpus)
		if !exOut.ok {
			t.Fatalf("seed %d: exhaustive run hit the cycle limit", seed)
		}
		if exOut != skOut || exBus != skBus || exFrac != skFrac {
			t.Errorf("seed %d (cpus=%d): an idle snoopy Step was not a no-op\nexhaustive: %+v bus=%d frac=%v\nskipping:   %+v bus=%d frac=%v",
				seed, cpus, exOut, exBus, exFrac, skOut, skBus, skFrac)
		}
		totalSkipped += skipped
	}
	if totalSkipped == 0 {
		t.Fatal("no Step was ever suppressed: the property was tested vacuously")
	}
}

// TestDirectoryIdleStepIsANoOp is the directory-protocol variant, where
// network latency opens real idle gaps between request and response.
func TestDirectoryIdleStepIsANoOp(t *testing.T) {
	var totalSkipped uint64
	for seed := uint64(0); seed < 20; seed++ {
		rng := sim.NewRNG(0x1d1f + seed)
		cpus := 2 + rng.Intn(3)
		netLat := sim.Cycle(1 + rng.Intn(8))
		st := randomStream(rng, cpus, 30+rng.Intn(80))
		exOut, exOps, exMax, exMean := runDirectoryOnce(st, cpus, netLat, false)
		skOut, skOps, skMax, skMean, skipped := runDirectorySkipping(st, cpus, netLat)
		if !exOut.ok {
			t.Fatalf("seed %d: exhaustive run hit the cycle limit", seed)
		}
		if exOut != skOut || exOps != skOps || exMax != skMax || exMean != skMean {
			t.Errorf("seed %d (cpus=%d netLat=%d): an idle directory Step was not a no-op\nexhaustive: %+v ops=%d qmax=%d qmean=%v\nskipping:   %+v ops=%d qmax=%d qmean=%v",
				seed, cpus, netLat, exOut, exOps, exMax, exMean, skOut, skOps, skMax, skMean)
		}
		totalSkipped += skipped
	}
	if totalSkipped == 0 {
		t.Fatal("no Step was ever suppressed: the property was tested vacuously")
	}
}

func TestSnoopyEngineMatchesExhaustive(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := sim.NewRNG(0xcafe + seed)
		cpus := 1 + rng.Intn(4)
		st := randomStream(rng, cpus, 30+rng.Intn(80))
		exOut, exBus, exFrac := runSnoopyOnce(st, cpus, false)
		evOut, evBus, evFrac := runSnoopyOnce(st, cpus, true)
		if !exOut.ok {
			t.Fatalf("seed %d: exhaustive run hit the cycle limit", seed)
		}
		if exOut != evOut || exBus != evBus || exFrac != evFrac {
			t.Errorf("seed %d (cpus=%d): evented snoopy run diverged\nexhaustive: %+v bus=%d frac=%v\nevented:    %+v bus=%d frac=%v",
				seed, cpus, exOut, exBus, exFrac, evOut, evBus, evFrac)
		}
	}
}

func TestDirectoryEngineMatchesExhaustive(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := sim.NewRNG(0xd1c7 + seed)
		cpus := 2 + rng.Intn(3)
		netLat := sim.Cycle(1 + rng.Intn(8))
		st := randomStream(rng, cpus, 30+rng.Intn(80))
		exOut, exOps, exMax, exMean := runDirectoryOnce(st, cpus, netLat, false)
		evOut, evOps, evMax, evMean := runDirectoryOnce(st, cpus, netLat, true)
		if !exOut.ok {
			t.Fatalf("seed %d: exhaustive run hit the cycle limit", seed)
		}
		if exOut != evOut || exOps != evOps || exMax != evMax || exMean != evMean {
			t.Errorf("seed %d (cpus=%d netLat=%d): evented directory run diverged\nexhaustive: %+v ops=%d qmax=%d qmean=%v\nevented:    %+v ops=%d qmax=%d qmean=%v",
				seed, cpus, netLat, exOut, exOps, exMax, exMean, evOut, evOps, evMax, evMean)
		}
	}
}
