package istructure

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// HEPModule is the Denelcor-HEP-style contrast to I-structure storage
// (paper footnote 2): cells carry a full/empty bit, but there is no
// deferred read list. A read of an empty cell is NACKed and the requester
// must retry — busy-waiting that consumes both controller and network
// bandwidth. E4 measures that waste against I-structure deferral.
type HEPModule struct {
	base, size uint32
	full       []bool
	values     []interface{}
	respond    func(HEPResponse)

	serviceTime sim.Cycle
	queue       []Request
	busyUntil   sim.Cycle
	stats       HEPStats
}

// HEPResponse reports a read or write outcome; OK=false means the read
// found the cell empty (or, for writes with the synchronizing discipline,
// found it full) and must be retried.
type HEPResponse struct {
	Addr    uint32
	Value   interface{}
	OK      bool
	ReplyTo interface{}
}

// HEPStats aggregates measurements, Retries being the busy-wait traffic.
type HEPStats struct {
	Reads   metrics.Counter
	Writes  metrics.Counter
	Retries metrics.Counter // NACKed reads
	Busy    metrics.Counter
}

// NewHEP returns a full/empty memory serving [base, base+size).
func NewHEP(base, size uint32, serviceTime sim.Cycle, respond func(HEPResponse)) *HEPModule {
	if serviceTime == 0 {
		serviceTime = 1
	}
	return &HEPModule{
		base: base, size: size,
		full:        make([]bool, size),
		values:      make([]interface{}, size),
		respond:     respond,
		serviceTime: serviceTime,
	}
}

// Stats returns the module's measurements.
func (m *HEPModule) Stats() *HEPStats { return &m.stats }

// Enqueue hands a request to the controller.
func (m *HEPModule) Enqueue(r Request) error {
	if r.Addr < m.base || r.Addr >= m.base+m.size {
		return fmt.Errorf("istructure: address %d outside HEP module [%d,%d)", r.Addr, m.base, m.base+m.size)
	}
	m.queue = append(m.queue, r)
	return nil
}

// Idle reports whether the controller has no queued work.
func (m *HEPModule) Idle() bool { return len(m.queue) == 0 }

// Step advances one cycle, servicing at most one request.
func (m *HEPModule) Step(now sim.Cycle) {
	if now < m.busyUntil {
		m.stats.Busy.Inc()
		return
	}
	if len(m.queue) == 0 {
		return
	}
	r := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.stats.Busy.Inc()
	m.busyUntil = now + m.serviceTime
	i := r.Addr - m.base
	switch r.Op {
	case OpRead:
		m.stats.Reads.Inc()
		if !m.full[i] {
			m.stats.Retries.Inc()
			m.respond(HEPResponse{Addr: r.Addr, OK: false, ReplyTo: r.ReplyTo})
			return
		}
		m.respond(HEPResponse{Addr: r.Addr, Value: m.values[i], OK: true, ReplyTo: r.ReplyTo})
	case OpWrite:
		m.stats.Writes.Inc()
		m.full[i] = true
		m.values[i] = r.Value
	case OpClear:
		m.full[i] = false
		m.values[i] = nil
	}
}
