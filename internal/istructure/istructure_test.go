package istructure

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// run steps the module until idle and not busy, up to limit cycles.
func run(t *testing.T, m *Module, limit int) {
	t.Helper()
	for c := 0; c < limit; c++ {
		m.Step(sim.Cycle(c))
	}
	if !m.Idle() {
		t.Fatalf("module not idle after %d cycles (%d queued)", limit, m.QueueLen())
	}
}

func TestWriteThenRead(t *testing.T) {
	var got []Response
	m := New(Config{Size: 8, Respond: func(r Response) { got = append(got, r) }, Strict: true})
	m.Enqueue(Request{Op: OpWrite, Addr: 3, Value: 42})
	m.Enqueue(Request{Op: OpRead, Addr: 3, ReplyTo: "reader"})
	run(t, m, 20)
	if len(got) != 1 || got[0].Value != 42 || got[0].ReplyTo != "reader" {
		t.Fatalf("got %v", got)
	}
	if m.Stats().ImmediateReads.Value() != 1 || m.Stats().DeferredReads.Value() != 0 {
		t.Fatal("read after write must be immediate")
	}
	if m.State(3) != Present {
		t.Fatalf("state = %v", m.State(3))
	}
}

func TestReadBeforeWriteIsDeferred(t *testing.T) {
	var got []Response
	m := New(Config{Size: 8, Respond: func(r Response) { got = append(got, r) }, Strict: true})
	m.Enqueue(Request{Op: OpRead, Addr: 5, ReplyTo: "early"})
	run(t, m, 10)
	if len(got) != 0 {
		t.Fatalf("read of empty cell must not respond, got %v", got)
	}
	if m.State(5) != Deferred || m.OutstandingDeferred() != 1 {
		t.Fatalf("state = %v, outstanding = %d", m.State(5), m.OutstandingDeferred())
	}
	m.Enqueue(Request{Op: OpWrite, Addr: 5, Value: 7})
	run(t, m, 10)
	if len(got) != 1 || got[0].Value != 7 || got[0].ReplyTo != "early" {
		t.Fatalf("deferred read not satisfied: %v", got)
	}
	if m.OutstandingDeferred() != 0 {
		t.Fatal("outstanding not cleared")
	}
}

func TestMultipleDeferredReaders(t *testing.T) {
	// "The memory module must maintain a list of deferred read requests
	// as there may be more than one read of a particular address before
	// the corresponding write."
	var got []Response
	m := New(Config{Size: 4, Respond: func(r Response) { got = append(got, r) }, Strict: true})
	for i := 0; i < 5; i++ {
		m.Enqueue(Request{Op: OpRead, Addr: 1, ReplyTo: i})
	}
	run(t, m, 20)
	if m.OutstandingDeferred() != 5 {
		t.Fatalf("outstanding = %d, want 5", m.OutstandingDeferred())
	}
	m.Enqueue(Request{Op: OpWrite, Addr: 1, Value: "v"})
	run(t, m, 20)
	if len(got) != 5 {
		t.Fatalf("satisfied %d readers, want 5", len(got))
	}
	seen := map[interface{}]bool{}
	for _, r := range got {
		if r.Value != "v" {
			t.Fatalf("wrong value %v", r.Value)
		}
		seen[r.ReplyTo] = true
	}
	if len(seen) != 5 {
		t.Fatal("each deferred reader must be satisfied exactly once")
	}
	if m.Stats().DeferListLen.Max() != 5 {
		t.Fatalf("defer list length histogram max = %d", m.Stats().DeferListLen.Max())
	}
}

func TestDoubleWritePanicsInStrictMode(t *testing.T) {
	m := New(Config{Size: 2, Respond: func(Response) {}, Strict: true})
	m.Enqueue(Request{Op: OpWrite, Addr: 0, Value: 1})
	m.Enqueue(Request{Op: OpWrite, Addr: 0, Value: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("double write must panic in strict mode")
		}
	}()
	run(t, m, 20)
}

func TestDoubleWriteCountedWhenNotStrict(t *testing.T) {
	m := New(Config{Size: 2, Respond: func(Response) {}})
	m.Enqueue(Request{Op: OpWrite, Addr: 0, Value: 1})
	m.Enqueue(Request{Op: OpWrite, Addr: 0, Value: 2})
	run(t, m, 20)
	if m.Stats().Errors.Value() != 1 {
		t.Fatalf("errors = %d, want 1", m.Stats().Errors.Value())
	}
	if m.Value(0) != 2 {
		t.Fatalf("value = %v", m.Value(0))
	}
}

func TestClearResetsCell(t *testing.T) {
	var got []Response
	m := New(Config{Size: 2, Respond: func(r Response) { got = append(got, r) }, Strict: true})
	m.Enqueue(Request{Op: OpWrite, Addr: 0, Value: 1})
	m.Enqueue(Request{Op: OpClear, Addr: 0})
	m.Enqueue(Request{Op: OpRead, Addr: 0, ReplyTo: "r"})
	run(t, m, 20)
	if len(got) != 0 || m.State(0) != Deferred {
		t.Fatalf("read after clear must defer; got %v, state %v", got, m.State(0))
	}
}

func TestWriteTakesTwiceAsLongAsRead(t *testing.T) {
	// Paper: "A read operation is as efficient as in a traditional
	// memory. Write operations take twice as long."
	m := New(Config{Size: 8, Respond: func(Response) {}})
	for i := uint32(0); i < 8; i++ {
		m.Enqueue(Request{Op: OpWrite, Addr: i, Value: 1})
	}
	writeCycles := 0
	for c := 0; !m.Idle() || c == 0; c++ {
		m.Step(sim.Cycle(c))
		writeCycles++
		if writeCycles > 100 {
			t.Fatal("did not drain")
		}
	}
	// Drain fully including busy tail: 8 writes at 2 cycles each start at
	// 0,2,4,...,14, so the last starts at cycle 14.
	m2 := New(Config{Size: 8, Respond: func(Response) {}})
	for i := uint32(0); i < 8; i++ {
		m2.Enqueue(Request{Op: OpRead, Addr: i, ReplyTo: i})
	}
	readCycles := 0
	for c := 0; !m2.Idle() || c == 0; c++ {
		m2.Step(sim.Cycle(c))
		readCycles++
		if readCycles > 100 {
			t.Fatal("did not drain")
		}
	}
	if writeCycles < 2*readCycles-2 {
		t.Fatalf("writes drained in %d cycles, reads in %d; writes should take ~2x", writeCycles, readCycles)
	}
}

func TestAddressRangeChecked(t *testing.T) {
	m := New(Config{Base: 100, Size: 10, Respond: func(Response) {}})
	if err := m.Enqueue(Request{Op: OpRead, Addr: 99}); err == nil {
		t.Fatal("below-range address must error")
	}
	if err := m.Enqueue(Request{Op: OpRead, Addr: 110}); err == nil {
		t.Fatal("above-range address must error")
	}
	if err := m.Enqueue(Request{Op: OpRead, Addr: 105}); err != nil {
		t.Fatalf("in-range address rejected: %v", err)
	}
}

func TestPropertyEveryReadEventuallySatisfied(t *testing.T) {
	// For any interleaving of reads and writes over a small address space
	// where every address is written exactly once, every read receives
	// exactly the written value.
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		const size = 8
		got := map[int]interface{}{}
		m := New(Config{Size: size, Respond: func(r Response) {
			got[r.ReplyTo.(int)] = r.Value
		}, Strict: true})
		written := [size]bool{}
		reads := 0
		// random schedule of 8 writes and 16 reads
		type op struct {
			isWrite bool
			addr    uint32
		}
		var ops []op
		for a := 0; a < size; a++ {
			ops = append(ops, op{true, uint32(a)})
		}
		for i := 0; i < 16; i++ {
			ops = append(ops, op{false, uint32(rng.Intn(size))})
		}
		for i := len(ops) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			ops[i], ops[j] = ops[j], ops[i]
		}
		expect := map[int]interface{}{}
		for _, o := range ops {
			if o.isWrite {
				m.Enqueue(Request{Op: OpWrite, Addr: o.addr, Value: int(o.addr) * 10})
				written[o.addr] = true
			} else {
				m.Enqueue(Request{Op: OpRead, Addr: o.addr, ReplyTo: reads})
				expect[reads] = int(o.addr) * 10
				reads++
			}
		}
		for c := 0; c < 1000; c++ {
			m.Step(sim.Cycle(c))
		}
		if len(got) != reads {
			return false
		}
		for k, v := range expect {
			if got[k] != v {
				return false
			}
		}
		return m.OutstandingDeferred() == 0
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHEPReadOfEmptyIsNACKed(t *testing.T) {
	var got []HEPResponse
	m := NewHEP(0, 8, 1, func(r HEPResponse) { got = append(got, r) })
	m.Enqueue(Request{Op: OpRead, Addr: 2, ReplyTo: "r"})
	for c := 0; c < 5; c++ {
		m.Step(sim.Cycle(c))
	}
	if len(got) != 1 || got[0].OK {
		t.Fatalf("empty-cell read must NACK: %v", got)
	}
	if m.Stats().Retries.Value() != 1 {
		t.Fatal("retry not counted")
	}
}

func TestHEPBusyWaitEventuallySucceeds(t *testing.T) {
	// A polling reader retries until the writer lands; count the wasted
	// controller operations — the cost I-structures avoid.
	var value interface{}
	pending := 0
	m := NewHEP(0, 8, 1, nil)
	retry := func(r HEPResponse) {
		pending--
		if r.OK {
			value = r.Value
			return
		}
		m.Enqueue(Request{Op: OpRead, Addr: r.Addr, ReplyTo: r.ReplyTo})
		pending++
	}
	m.respond = retry
	m.Enqueue(Request{Op: OpRead, Addr: 0, ReplyTo: "poller"})
	pending++
	for c := 0; c < 100; c++ {
		if c == 50 {
			m.Enqueue(Request{Op: OpWrite, Addr: 0, Value: 99})
		}
		m.Step(sim.Cycle(c))
	}
	if value != 99 {
		t.Fatalf("poller never got the value: %v", value)
	}
	if m.Stats().Retries.Value() < 10 {
		t.Fatalf("expected many busy-wait retries, got %d", m.Stats().Retries.Value())
	}
}
