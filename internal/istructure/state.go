package istructure

import (
	"sort"

	"repro/internal/sim"
)

// Checkpoint serialization. A module's opaque payloads — cell values,
// queued request values, and ReplyTo continuations — serialize through a
// Codec the owning machine supplies, mirroring network.PayloadCodec.
// Construction-time configuration (base, size, service times, strictness,
// the respond callback) is not serialized: state restores into a freshly
// built module of identical shape. The cell table restores canonically:
// entries are written in ascending index order and untouched (or cleared)
// cells are skipped, which is observationally identical and keeps
// encode→decode→encode byte-stable regardless of hash-table history.

// Codec serializes a module's opaque Value and ReplyTo payloads.
type Codec interface {
	SaveValue(e *sim.Enc, v interface{})
	LoadValue(d *sim.Dec) interface{}
	SaveReply(e *sim.Enc, r interface{})
	LoadReply(d *sim.Dec) interface{}
}

// saveOpt writes a nil-flagged payload.
func saveOpt(e *sim.Enc, v interface{}, save func(*sim.Enc, interface{})) {
	e.Bool(v != nil)
	if v != nil {
		save(e, v)
	}
}

// loadOpt reads a nil-flagged payload.
func loadOpt(d *sim.Dec, load func(*sim.Dec) interface{}) interface{} {
	if !d.Bool() || d.Err() != nil {
		return nil
	}
	return load(d)
}

// saveRequest appends one queued request.
func saveRequest(e *sim.Enc, c Codec, r Request) {
	e.U8(uint8(r.Op))
	e.U32(r.Addr)
	saveOpt(e, r.Value, c.SaveValue)
	saveOpt(e, r.ReplyTo, c.SaveReply)
}

// loadRequest reads one queued request, validating the opcode and the
// address range.
func loadRequest(d *sim.Dec, c Codec, base, size uint32) Request {
	var r Request
	r.Op = Op(d.U8())
	r.Addr = d.U32()
	r.Value = loadOpt(d, c.LoadValue)
	r.ReplyTo = loadOpt(d, c.LoadReply)
	if d.Err() == nil {
		if r.Op > OpClear {
			d.Failf("invalid I-structure op %d", r.Op)
		} else if r.Addr < base || r.Addr >= base+size {
			d.Failf("queued request address %d outside module [%d,%d)", r.Addr, base, base+size)
		}
	}
	return r
}

// SaveTo appends the module's dynamic state.
func (m *Module) SaveTo(e *sim.Enc, c Codec) {
	e.Tag("ismod", 1)
	e.Cycle(m.busyUntil)
	e.Cycle(m.lastStep)
	m.stats.Reads.Save(e)
	m.stats.Writes.Save(e)
	m.stats.DeferredReads.Save(e)
	m.stats.ImmediateReads.Save(e)
	m.stats.Errors.Save(e)
	m.stats.DeferListLen.Save(e)
	m.stats.Outstanding.Save(e)
	m.stats.Busy.Save(e)
	sim.SaveFIFO(e, &m.queue, func(e *sim.Enc, r Request) { saveRequest(e, c, r) })

	// Touched cells in ascending index order. Cells cleared back to the
	// zero state are skipped: their presence in the table is invisible to
	// every observer.
	type entry struct {
		k uint32
		c *cell
	}
	var ents []entry
	for b, s := range m.cells.idx {
		if s == cellEmpty {
			continue
		}
		cl := &m.cells.slab[s]
		if cl.state == Empty && cl.value == nil && len(cl.waiters) == 0 {
			continue
		}
		ents = append(ents, entry{m.cells.keys[b], cl})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].k < ents[j].k })
	e.Len(len(ents))
	for _, en := range ents {
		e.U32(en.k)
		e.U8(uint8(en.c.state))
		saveOpt(e, en.c.value, c.SaveValue)
		e.Len(len(en.c.waiters))
		for _, w := range en.c.waiters {
			c.SaveReply(e, w)
		}
	}
}

// LoadFrom restores the module into its freshly constructed self.
func (m *Module) LoadFrom(d *sim.Dec, c Codec) error {
	if err := d.Tag("ismod", 1); err != nil {
		return err
	}
	m.busyUntil = d.Cycle()
	m.lastStep = d.Cycle()
	m.stats.Reads.Load(d)
	m.stats.Writes.Load(d)
	m.stats.DeferredReads.Load(d)
	m.stats.ImmediateReads.Load(d)
	m.stats.Errors.Load(d)
	m.stats.DeferListLen.Load(d)
	m.stats.Outstanding.Load(d)
	m.stats.Busy.Load(d)
	if err := sim.LoadFIFO(d, &m.queue, d.Remaining(), func(d *sim.Dec) Request {
		return loadRequest(d, c, m.base, m.size)
	}); err != nil {
		return err
	}

	m.cells = cellTable{}
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	waiting := 0
	prev := int64(-1)
	for i := 0; i < n; i++ {
		k := d.U32()
		st := CellState(d.U8())
		val := loadOpt(d, c.LoadValue)
		nw := d.Len(d.Remaining())
		if d.Err() != nil {
			return d.Err()
		}
		if int64(k) <= prev {
			d.Failf("cell index %d out of order (previous %d)", k, prev)
			return d.Err()
		}
		prev = int64(k)
		if k >= m.size {
			d.Failf("cell index %d outside module of %d cells", k, m.size)
			return d.Err()
		}
		if st > Present {
			d.Failf("invalid cell state %d", st)
			return d.Err()
		}
		if (st == Deferred) != (nw > 0) {
			d.Failf("cell %d state %s with %d waiters", k, st, nw)
			return d.Err()
		}
		cl := m.cells.get(k)
		cl.state = st
		cl.value = val
		for j := 0; j < nw && d.Err() == nil; j++ {
			cl.waiters = append(cl.waiters, c.LoadReply(d))
		}
		waiting += nw
		if d.Err() != nil {
			return d.Err()
		}
	}
	if got := m.stats.Outstanding.Level(); got != int64(waiting) {
		d.Failf("outstanding gauge %d, cells hold %d deferred readers", got, waiting)
	}
	return d.Err()
}

// SaveTo appends the full/empty memory's dynamic state.
func (m *HEPModule) SaveTo(e *sim.Enc, c Codec) {
	e.Tag("hepmod", 1)
	e.Cycle(m.busyUntil)
	m.stats.Reads.Save(e)
	m.stats.Writes.Save(e)
	m.stats.Retries.Save(e)
	m.stats.Busy.Save(e)
	e.Len(len(m.queue))
	for _, r := range m.queue {
		saveRequest(e, c, r)
	}
	touched := 0
	for i := uint32(0); i < m.size; i++ {
		if m.full[i] || m.values[i] != nil {
			touched++
		}
	}
	e.Len(touched)
	for i := uint32(0); i < m.size; i++ {
		if !m.full[i] && m.values[i] == nil {
			continue
		}
		e.U32(i)
		e.Bool(m.full[i])
		saveOpt(e, m.values[i], c.SaveValue)
	}
}

// LoadFrom restores the full/empty memory.
func (m *HEPModule) LoadFrom(d *sim.Dec, c Codec) error {
	if err := d.Tag("hepmod", 1); err != nil {
		return err
	}
	m.busyUntil = d.Cycle()
	m.stats.Reads.Load(d)
	m.stats.Writes.Load(d)
	m.stats.Retries.Load(d)
	m.stats.Busy.Load(d)
	n := d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	m.queue = m.queue[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		m.queue = append(m.queue, loadRequest(d, c, m.base, m.size))
	}
	for i := range m.full {
		m.full[i] = false
		m.values[i] = nil
	}
	n = d.Len(d.Remaining())
	if d.Err() != nil {
		return d.Err()
	}
	prev := int64(-1)
	for i := 0; i < n; i++ {
		k := d.U32()
		full := d.Bool()
		val := loadOpt(d, c.LoadValue)
		if d.Err() != nil {
			return d.Err()
		}
		if int64(k) <= prev {
			d.Failf("cell index %d out of order (previous %d)", k, prev)
			return d.Err()
		}
		prev = int64(k)
		if k >= m.size {
			d.Failf("cell index %d outside module of %d cells", k, m.size)
			return d.Err()
		}
		m.full[k] = full
		m.values[k] = val
	}
	return d.Err()
}
