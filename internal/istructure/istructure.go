// Package istructure implements I-structure storage (Section 2.1, Figure
// 2-1): memory whose cells carry presence bits and whose controller defers
// read requests that arrive before the corresponding write, forwarding the
// datum to every deferred reader when the write lands.
//
// The package also provides a Denelcor-HEP-style full/empty memory
// (footnote 2 of the paper) in which unsatisfiable reads are NACKed and the
// requester must busy-wait, for the E4 comparison between deferral and
// retry.
package istructure

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// CellState is the presence-bit state of one storage cell.
type CellState uint8

// Cell states, as in Figure 2-1.
const (
	Empty    CellState = iota // never written, no waiting readers
	Deferred                  // never written, readers waiting
	Present                   // written
)

func (s CellState) String() string {
	switch s {
	case Empty:
		return "empty"
	case Deferred:
		return "deferred"
	case Present:
		return "present"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Op is the request type handled by the controller.
type Op uint8

// Controller operations.
const (
	OpRead Op = iota
	OpWrite
	OpClear // reset a cell to empty (structure reuse; errors if readers wait)
)

// Request is one packet-carried operation on I-structure storage. ReplyTo
// is an opaque continuation (the machine puts a token tag here) returned
// verbatim on the response.
type Request struct {
	Op      Op
	Addr    uint32
	Value   interface{}
	ReplyTo interface{}
}

// Response carries a fetched value back to the requester.
type Response struct {
	Addr    uint32
	Value   interface{}
	ReplyTo interface{}
}

// cell is one word of I-structure storage plus its presence bits and
// deferred read list.
type cell struct {
	state   CellState
	value   interface{}
	waiters []interface{} // ReplyTo continuations of deferred readers
}

// Stats aggregates controller measurements.
type Stats struct {
	Reads          metrics.Counter
	Writes         metrics.Counter
	DeferredReads  metrics.Counter // reads that arrived before the write
	ImmediateReads metrics.Counter
	Errors         metrics.Counter
	// DeferListLen observes the deferred-list length consumed by each
	// write that found waiters.
	DeferListLen *metrics.Histogram
	// Outstanding tracks currently-deferred reads (peak = storage the
	// controller must dedicate to the deferred lists).
	Outstanding metrics.Gauge
	// Busy counts controller-occupied cycles.
	Busy metrics.Counter
}

// cellTable stores the module's touched cells: an open-addressed hash
// table keyed by module-relative cell index over a slab of cell records
// (the matchtable idiom from internal/core). Modules are routinely
// configured with tens of thousands of cells of which a run touches a
// handful; hashing makes construction allocation-free and run cost
// proportional to the cells actually used, where the earlier page array
// paid a headers slice sized for the whole address space per module.
// Cells are never deleted (OpClear resets a cell in place), so the table
// needs no tombstones or backward-shift machinery.
type cellTable struct {
	keys []uint32
	// idx[b] is the slab index of the entry in bucket b, or cellEmpty.
	idx  []int32
	mask uint32
	n    int
	slab []cell
}

const cellEmpty = int32(-1)

func (t *cellTable) init(buckets int) {
	t.keys = make([]uint32, buckets)
	t.idx = make([]int32, buckets)
	for i := range t.idx {
		t.idx[i] = cellEmpty
	}
	t.mask = uint32(buckets - 1)
	t.n = 0
}

// hashCell is a fixed (seedless) 32-bit mix so runs stay reproducible.
func hashCell(k uint32) uint32 {
	k ^= k >> 16
	k *= 0x7feb352d
	k ^= k >> 15
	k *= 0x846ca68b
	k ^= k >> 16
	return k
}

// lookup returns the cell for index k, or nil when never touched. The
// pointer stays valid until the next get (which may grow the slab).
func (t *cellTable) lookup(k uint32) *cell {
	if t.n == 0 {
		return nil
	}
	b := hashCell(k) & t.mask
	for {
		s := t.idx[b]
		if s == cellEmpty {
			return nil
		}
		if t.keys[b] == k {
			return &t.slab[s]
		}
		b = (b + 1) & t.mask
	}
}

// get returns the cell for index k, inserting a zeroed (Empty) one when
// absent.
func (t *cellTable) get(k uint32) *cell {
	if t.idx == nil {
		t.init(16)
	}
	b := hashCell(k) & t.mask
	for {
		s := t.idx[b]
		if s == cellEmpty {
			break
		}
		if t.keys[b] == k {
			return &t.slab[s]
		}
		b = (b + 1) & t.mask
	}
	if uint32(t.n) >= (t.mask+1)/4*3 {
		t.grow()
		b = hashCell(k) & t.mask
		for t.idx[b] != cellEmpty {
			b = (b + 1) & t.mask
		}
	}
	s := int32(len(t.slab))
	t.slab = append(t.slab, cell{})
	t.keys[b] = k
	t.idx[b] = s
	t.n++
	return &t.slab[s]
}

// grow doubles the bucket array and rehashes every binding.
func (t *cellTable) grow() {
	oldKeys, oldIdx := t.keys, t.idx
	t.init(int(2 * (t.mask + 1)))
	n := 0
	for b, s := range oldIdx {
		if s != cellEmpty {
			bb := hashCell(oldKeys[b]) & t.mask
			for t.idx[bb] != cellEmpty {
				bb = (bb + 1) & t.mask
			}
			t.keys[bb] = oldKeys[b]
			t.idx[bb] = s
			n++
		}
	}
	t.n = n
}

// Module is a cycle-stepped I-structure storage controller serving the
// address range [Base, Base+Size). Requests queue at the controller; a
// read occupies it for ReadTime cycles and a write for WriteTime cycles
// ("write operations take twice as long ... due to the prefetching of
// presence bits").
type Module struct {
	base, size uint32
	cells      cellTable // touched cells only
	respond    func(Response)

	readTime, writeTime sim.Cycle
	queue               sim.FIFO[Request]
	busyUntil           sim.Cycle
	lastStep            sim.Cycle // last cycle Step ran, for busy settlement
	stats               Stats
	strict              bool
}

// cellAt returns the cell for module-relative index i, materializing it
// (state Empty) on first touch.
func (m *Module) cellAt(i uint32) *cell { return m.cells.get(i) }

// peekCell returns the cell for index i without materializing, or nil when
// it was never touched (state Empty, value nil).
func (m *Module) peekCell(i uint32) *cell { return m.cells.lookup(i) }

// Config parameterizes a module.
type Config struct {
	Base uint32
	Size uint32
	// ReadTime and WriteTime are the controller occupancy per operation;
	// zero values default to 1 and 2 (the paper's ratio).
	ReadTime  sim.Cycle
	WriteTime sim.Cycle
	// Respond receives fetched values (immediate or previously deferred).
	Respond func(Response)
	// Strict makes double writes an error (single-assignment discipline);
	// when false, rewrites are counted but overwrite silently.
	Strict bool
}

// New returns an I-structure module.
func New(cfg Config) *Module {
	if cfg.ReadTime == 0 {
		cfg.ReadTime = 1
	}
	if cfg.WriteTime == 0 {
		cfg.WriteTime = 2
	}
	m := &Module{
		base:      cfg.Base,
		size:      cfg.Size,
		respond:   cfg.Respond,
		readTime:  cfg.ReadTime,
		writeTime: cfg.WriteTime,
		strict:    cfg.Strict,
	}
	m.stats.DeferListLen = metrics.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128)
	return m
}

// Base returns the first address served.
func (m *Module) Base() uint32 { return m.base }

// Size returns the number of cells.
func (m *Module) Size() uint32 { return m.size }

// Stats returns the controller's measurements.
func (m *Module) Stats() *Stats { return &m.stats }

// QueueLen returns the number of requests waiting for the controller.
func (m *Module) QueueLen() int { return m.queue.Len() }

// OutstandingDeferred returns the number of reads currently deferred.
func (m *Module) OutstandingDeferred() int { return int(m.stats.Outstanding.Level()) }

// Enqueue hands a request to the controller. The caller is responsible for
// routing: Addr must be in range.
func (m *Module) Enqueue(r Request) error {
	if r.Addr < m.base || r.Addr >= m.base+m.size {
		return fmt.Errorf("istructure: address %d outside module [%d,%d)", r.Addr, m.base, m.base+m.size)
	}
	m.queue.Push(r)
	return nil
}

// Idle reports whether the controller has no queued work.
func (m *Module) Idle() bool { return m.queue.Len() == 0 }

// NextEvent reports the earliest cycle at or after now at which stepping
// the controller does anything: now when a request can be serviced, the
// busy-until cycle while one is occupying the controller, or sim.Never
// when the queue is empty. (A busy controller with an empty queue needs no
// step: settleBusy reconstructs its occupancy statistics.)
func (m *Module) NextEvent(now sim.Cycle) sim.Cycle {
	if m.queue.Len() == 0 {
		return sim.Never
	}
	if m.busyUntil > now {
		return m.busyUntil
	}
	return now
}

// settleBusy credits the occupied-controller cycles a per-cycle stepper
// would have counted in (m.lastStep, now): one Busy tick per cycle the
// controller was within a request's service time. Keeps the Busy counter
// bit-identical to per-cycle stepping when idle cycles are skipped.
func (m *Module) settleBusy(now sim.Cycle) {
	end := m.busyUntil
	if now < end {
		end = now
	}
	if end > m.lastStep+1 {
		m.stats.Busy.Add(uint64(end - m.lastStep - 1))
	}
	m.lastStep = now
}

// FinishStats settles per-cycle statistics through end-of-run cycle now
// (exclusive). Idempotent for a constant now; call when the simulation
// reaches quiescence.
func (m *Module) FinishStats(now sim.Cycle) {
	m.settleBusy(now)
}

// Step advances one cycle, servicing at most one request when the
// controller is free.
func (m *Module) Step(now sim.Cycle) {
	m.settleBusy(now)
	if now < m.busyUntil {
		m.stats.Busy.Inc()
		return
	}
	if m.queue.Len() == 0 {
		return
	}
	r := m.queue.Pop()
	m.stats.Busy.Inc()
	switch r.Op {
	case OpRead:
		m.busyUntil = now + m.readTime
		m.read(r)
	case OpWrite:
		m.busyUntil = now + m.writeTime
		m.write(r)
	case OpClear:
		m.busyUntil = now + m.writeTime
		m.clear(r)
	}
}

// read services a read request per Figure 2-1: present cells respond
// immediately; empty cells defer the request on the cell's deferred list.
func (m *Module) read(r Request) {
	c := m.cellAt(r.Addr - m.base)
	m.stats.Reads.Inc()
	switch c.state {
	case Present:
		m.stats.ImmediateReads.Inc()
		m.respond(Response{Addr: r.Addr, Value: c.value, ReplyTo: r.ReplyTo})
	default:
		c.state = Deferred
		c.waiters = append(c.waiters, r.ReplyTo)
		m.stats.DeferredReads.Inc()
		m.stats.Outstanding.Add(1)
	}
}

// write services a write: store the datum, set the presence bits, and
// satisfy every deferred reader.
func (m *Module) write(r Request) {
	c := m.cellAt(r.Addr - m.base)
	m.stats.Writes.Inc()
	if c.state == Present {
		m.stats.Errors.Inc()
		if m.strict {
			panic(fmt.Sprintf("istructure: double write to address %d (single-assignment violation)", r.Addr))
		}
	}
	if len(c.waiters) > 0 {
		m.stats.DeferListLen.Observe(uint64(len(c.waiters)))
		for _, w := range c.waiters {
			m.respond(Response{Addr: r.Addr, Value: r.Value, ReplyTo: w})
		}
		m.stats.Outstanding.Add(-int64(len(c.waiters)))
		c.waiters = nil
	}
	c.state = Present
	c.value = r.Value
}

// clear resets a cell for structure reuse.
func (m *Module) clear(r Request) {
	c := m.cellAt(r.Addr - m.base)
	if len(c.waiters) > 0 {
		m.stats.Errors.Inc()
		if m.strict {
			panic(fmt.Sprintf("istructure: clear of address %d with %d deferred readers", r.Addr, len(c.waiters)))
		}
	}
	c.state = Empty
	c.value = nil
	c.waiters = nil
}

// State reports a cell's presence state (for tests and dumps).
func (m *Module) State(addr uint32) CellState {
	if c := m.peekCell(addr - m.base); c != nil {
		return c.state
	}
	return Empty
}

// Value reports a written cell's value, or nil.
func (m *Module) Value(addr uint32) interface{} {
	if c := m.peekCell(addr - m.base); c != nil {
		return c.value
	}
	return nil
}
