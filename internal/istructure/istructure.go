// Package istructure implements I-structure storage (Section 2.1, Figure
// 2-1): memory whose cells carry presence bits and whose controller defers
// read requests that arrive before the corresponding write, forwarding the
// datum to every deferred reader when the write lands.
//
// The package also provides a Denelcor-HEP-style full/empty memory
// (footnote 2 of the paper) in which unsatisfiable reads are NACKed and the
// requester must busy-wait, for the E4 comparison between deferral and
// retry.
package istructure

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// CellState is the presence-bit state of one storage cell.
type CellState uint8

// Cell states, as in Figure 2-1.
const (
	Empty    CellState = iota // never written, no waiting readers
	Deferred                  // never written, readers waiting
	Present                   // written
)

func (s CellState) String() string {
	switch s {
	case Empty:
		return "empty"
	case Deferred:
		return "deferred"
	case Present:
		return "present"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Op is the request type handled by the controller.
type Op uint8

// Controller operations.
const (
	OpRead Op = iota
	OpWrite
	OpClear // reset a cell to empty (structure reuse; errors if readers wait)
)

// Request is one packet-carried operation on I-structure storage. ReplyTo
// is an opaque continuation (the machine puts a token tag here) returned
// verbatim on the response.
type Request struct {
	Op      Op
	Addr    uint32
	Value   interface{}
	ReplyTo interface{}
}

// Response carries a fetched value back to the requester.
type Response struct {
	Addr    uint32
	Value   interface{}
	ReplyTo interface{}
}

// cell is one word of I-structure storage plus its presence bits and
// deferred read list.
type cell struct {
	state   CellState
	value   interface{}
	waiters []interface{} // ReplyTo continuations of deferred readers
}

// Stats aggregates controller measurements.
type Stats struct {
	Reads          metrics.Counter
	Writes         metrics.Counter
	DeferredReads  metrics.Counter // reads that arrived before the write
	ImmediateReads metrics.Counter
	Errors         metrics.Counter
	// DeferListLen observes the deferred-list length consumed by each
	// write that found waiters.
	DeferListLen *metrics.Histogram
	// Outstanding tracks currently-deferred reads (peak = storage the
	// controller must dedicate to the deferred lists).
	Outstanding metrics.Gauge
	// Busy counts controller-occupied cycles.
	Busy metrics.Counter
}

// pageBits sizes the lazily-allocated cell pages (1<<pageBits cells per
// page). Modules are routinely configured with tens of thousands of cells
// of which a run touches a handful; paging keeps construction O(1) and
// the garbage collector away from untouched storage.
const pageBits = 10

// Module is a cycle-stepped I-structure storage controller serving the
// address range [Base, Base+Size). Requests queue at the controller; a
// read occupies it for ReadTime cycles and a write for WriteTime cycles
// ("write operations take twice as long ... due to the prefetching of
// presence bits").
type Module struct {
	base, size uint32
	pages      [][]cell // lazily allocated, pageBits cells each
	respond    func(Response)

	readTime, writeTime sim.Cycle
	queue               sim.FIFO[Request]
	busyUntil           sim.Cycle
	lastStep            sim.Cycle // last cycle Step ran, for busy settlement
	stats               Stats
	strict              bool
}

// cellAt returns the cell for module-relative index i, allocating its
// page on first touch.
func (m *Module) cellAt(i uint32) *cell {
	pg := i >> pageBits
	if m.pages[pg] == nil {
		m.pages[pg] = make([]cell, 1<<pageBits)
	}
	return &m.pages[pg][i&(1<<pageBits-1)]
}

// peekCell returns the cell for index i without allocating, or nil when
// its page was never touched (state Empty, value nil).
func (m *Module) peekCell(i uint32) *cell {
	pg := m.pages[i>>pageBits]
	if pg == nil {
		return nil
	}
	return &pg[i&(1<<pageBits-1)]
}

// Config parameterizes a module.
type Config struct {
	Base uint32
	Size uint32
	// ReadTime and WriteTime are the controller occupancy per operation;
	// zero values default to 1 and 2 (the paper's ratio).
	ReadTime  sim.Cycle
	WriteTime sim.Cycle
	// Respond receives fetched values (immediate or previously deferred).
	Respond func(Response)
	// Strict makes double writes an error (single-assignment discipline);
	// when false, rewrites are counted but overwrite silently.
	Strict bool
}

// New returns an I-structure module.
func New(cfg Config) *Module {
	if cfg.ReadTime == 0 {
		cfg.ReadTime = 1
	}
	if cfg.WriteTime == 0 {
		cfg.WriteTime = 2
	}
	m := &Module{
		base:      cfg.Base,
		size:      cfg.Size,
		pages:     make([][]cell, (uint64(cfg.Size)+(1<<pageBits)-1)>>pageBits),
		respond:   cfg.Respond,
		readTime:  cfg.ReadTime,
		writeTime: cfg.WriteTime,
		strict:    cfg.Strict,
	}
	m.stats.DeferListLen = metrics.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128)
	return m
}

// Base returns the first address served.
func (m *Module) Base() uint32 { return m.base }

// Size returns the number of cells.
func (m *Module) Size() uint32 { return m.size }

// Stats returns the controller's measurements.
func (m *Module) Stats() *Stats { return &m.stats }

// QueueLen returns the number of requests waiting for the controller.
func (m *Module) QueueLen() int { return m.queue.Len() }

// OutstandingDeferred returns the number of reads currently deferred.
func (m *Module) OutstandingDeferred() int { return int(m.stats.Outstanding.Level()) }

// Enqueue hands a request to the controller. The caller is responsible for
// routing: Addr must be in range.
func (m *Module) Enqueue(r Request) error {
	if r.Addr < m.base || r.Addr >= m.base+m.size {
		return fmt.Errorf("istructure: address %d outside module [%d,%d)", r.Addr, m.base, m.base+m.size)
	}
	m.queue.Push(r)
	return nil
}

// Idle reports whether the controller has no queued work.
func (m *Module) Idle() bool { return m.queue.Len() == 0 }

// NextEvent reports the earliest cycle at or after now at which stepping
// the controller does anything: now when a request can be serviced, the
// busy-until cycle while one is occupying the controller, or sim.Never
// when the queue is empty. (A busy controller with an empty queue needs no
// step: settleBusy reconstructs its occupancy statistics.)
func (m *Module) NextEvent(now sim.Cycle) sim.Cycle {
	if m.queue.Len() == 0 {
		return sim.Never
	}
	if m.busyUntil > now {
		return m.busyUntil
	}
	return now
}

// settleBusy credits the occupied-controller cycles a per-cycle stepper
// would have counted in (m.lastStep, now): one Busy tick per cycle the
// controller was within a request's service time. Keeps the Busy counter
// bit-identical to per-cycle stepping when idle cycles are skipped.
func (m *Module) settleBusy(now sim.Cycle) {
	end := m.busyUntil
	if now < end {
		end = now
	}
	if end > m.lastStep+1 {
		m.stats.Busy.Add(uint64(end - m.lastStep - 1))
	}
	m.lastStep = now
}

// FinishStats settles per-cycle statistics through end-of-run cycle now
// (exclusive). Idempotent for a constant now; call when the simulation
// reaches quiescence.
func (m *Module) FinishStats(now sim.Cycle) {
	m.settleBusy(now)
}

// Step advances one cycle, servicing at most one request when the
// controller is free.
func (m *Module) Step(now sim.Cycle) {
	m.settleBusy(now)
	if now < m.busyUntil {
		m.stats.Busy.Inc()
		return
	}
	if m.queue.Len() == 0 {
		return
	}
	r := m.queue.Pop()
	m.stats.Busy.Inc()
	switch r.Op {
	case OpRead:
		m.busyUntil = now + m.readTime
		m.read(r)
	case OpWrite:
		m.busyUntil = now + m.writeTime
		m.write(r)
	case OpClear:
		m.busyUntil = now + m.writeTime
		m.clear(r)
	}
}

// read services a read request per Figure 2-1: present cells respond
// immediately; empty cells defer the request on the cell's deferred list.
func (m *Module) read(r Request) {
	c := m.cellAt(r.Addr - m.base)
	m.stats.Reads.Inc()
	switch c.state {
	case Present:
		m.stats.ImmediateReads.Inc()
		m.respond(Response{Addr: r.Addr, Value: c.value, ReplyTo: r.ReplyTo})
	default:
		c.state = Deferred
		c.waiters = append(c.waiters, r.ReplyTo)
		m.stats.DeferredReads.Inc()
		m.stats.Outstanding.Add(1)
	}
}

// write services a write: store the datum, set the presence bits, and
// satisfy every deferred reader.
func (m *Module) write(r Request) {
	c := m.cellAt(r.Addr - m.base)
	m.stats.Writes.Inc()
	if c.state == Present {
		m.stats.Errors.Inc()
		if m.strict {
			panic(fmt.Sprintf("istructure: double write to address %d (single-assignment violation)", r.Addr))
		}
	}
	if len(c.waiters) > 0 {
		m.stats.DeferListLen.Observe(uint64(len(c.waiters)))
		for _, w := range c.waiters {
			m.respond(Response{Addr: r.Addr, Value: r.Value, ReplyTo: w})
		}
		m.stats.Outstanding.Add(-int64(len(c.waiters)))
		c.waiters = nil
	}
	c.state = Present
	c.value = r.Value
}

// clear resets a cell for structure reuse.
func (m *Module) clear(r Request) {
	c := m.cellAt(r.Addr - m.base)
	if len(c.waiters) > 0 {
		m.stats.Errors.Inc()
		if m.strict {
			panic(fmt.Sprintf("istructure: clear of address %d with %d deferred readers", r.Addr, len(c.waiters)))
		}
	}
	c.state = Empty
	c.value = nil
	c.waiters = nil
}

// State reports a cell's presence state (for tests and dumps).
func (m *Module) State(addr uint32) CellState {
	if c := m.peekCell(addr - m.base); c != nil {
		return c.state
	}
	return Empty
}

// Value reports a written cell's value, or nil.
func (m *Module) Value(addr uint32) interface{} {
	if c := m.peekCell(addr - m.base); c != nil {
		return c.value
	}
	return nil
}
