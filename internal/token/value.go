package token

import (
	"fmt"
	"math"
)

// Kind discriminates the datum carried by a Value.
type Kind uint8

// Value kinds.
const (
	KindNil   Kind = iota // no datum (pure trigger/signal tokens)
	KindInt               // 64-bit signed integer
	KindFloat             // 64-bit float
	KindBool              // boolean
	KindRef               // reference to an I-structure (base address + length)
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindRef:
		return "ref"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Ref is a reference to an I-structure: a base address in the global
// I-structure address space plus the element count. Tokens carry only
// references; the elements live in I-structure storage (Section 2.2.4).
type Ref struct {
	Base uint32
	Len  uint32
}

// Value is the datum field of a token. It is a small tagged union rather
// than an interface so tokens stay allocation-free on the hot path. Field
// order packs the one-byte Kind and B together after the words, so the
// struct is 32 bytes instead of 40 — values are copied through several
// queues per instruction, and the simulators' throughput tracks this size.
type Value struct {
	I    int64
	F    float64
	R    Ref
	Kind Kind
	B    bool
}

// Nil returns the empty value.
func Nil() Value { return Value{Kind: KindNil} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// NewRef returns an I-structure reference value.
func NewRef(r Ref) Value { return Value{Kind: KindRef, R: r} }

// AsFloat converts numeric values to float64; it returns an error for
// non-numeric kinds. Ints convert exactly (up to float precision).
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KindFloat:
		return v.F, nil
	case KindInt:
		return float64(v.I), nil
	default:
		return 0, fmt.Errorf("token: value %s is not numeric", v)
	}
}

// AsInt converts numeric values to int64. Floats convert only if integral.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.I, nil
	case KindFloat:
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) {
			return int64(v.F), nil
		}
		return 0, fmt.Errorf("token: float %g is not integral", v.F)
	default:
		return 0, fmt.Errorf("token: value %s is not numeric", v)
	}
}

// AsBool returns the boolean payload or an error for other kinds.
func (v Value) AsBool() (bool, error) {
	if v.Kind != KindBool {
		return false, fmt.Errorf("token: value %s is not boolean", v)
	}
	return v.B, nil
}

// AsRef returns the I-structure reference payload or an error.
func (v Value) AsRef() (Ref, error) {
	if v.Kind != KindRef {
		return Ref{}, fmt.Errorf("token: value %s is not a reference", v)
	}
	return v.R, nil
}

// Equal reports semantic equality. Int and float compare numerically across
// kinds so that a literal 2 equals 2.0, mirroring MiniID's numeric tower.
func (v Value) Equal(w Value) bool {
	if (v.Kind == KindInt || v.Kind == KindFloat) && (w.Kind == KindInt || w.Kind == KindFloat) {
		a, _ := v.AsFloat()
		b, _ := w.AsFloat()
		return a == b
	}
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindNil:
		return true
	case KindBool:
		return v.B == w.B
	case KindRef:
		return v.R == w.R
	default:
		return false
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "·"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	case KindRef:
		return fmt.Sprintf("ref[%d+%d]", v.R.Base, v.R.Len)
	default:
		return "?"
	}
}
