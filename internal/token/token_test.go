package token

import (
	"testing"
	"testing/quick"
)

func TestValueConversions(t *testing.T) {
	if v, err := Int(42).AsFloat(); err != nil || v != 42 {
		t.Fatalf("Int(42).AsFloat() = %v, %v", v, err)
	}
	if v, err := Float(2.5).AsFloat(); err != nil || v != 2.5 {
		t.Fatalf("Float(2.5).AsFloat() = %v, %v", v, err)
	}
	if v, err := Float(3.0).AsInt(); err != nil || v != 3 {
		t.Fatalf("Float(3.0).AsInt() = %v, %v", v, err)
	}
	if _, err := Float(3.5).AsInt(); err == nil {
		t.Fatal("non-integral float must not convert to int")
	}
	if _, err := Bool(true).AsFloat(); err == nil {
		t.Fatal("bool must not convert to float")
	}
	if _, err := Nil().AsBool(); err == nil {
		t.Fatal("nil must not convert to bool")
	}
	if r, err := NewRef(Ref{Base: 10, Len: 4}).AsRef(); err != nil || r.Base != 10 || r.Len != 4 {
		t.Fatalf("AsRef = %v, %v", r, err)
	}
}

func TestValueEqualNumericTower(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Fatal("2 must equal 2.0")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Fatal("2 must not equal 2.5")
	}
	if Int(1).Equal(Bool(true)) {
		t.Fatal("int must not equal bool")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Fatal("bool equality broken")
	}
	if !Nil().Equal(Nil()) {
		t.Fatal("nil must equal nil")
	}
	if !NewRef(Ref{1, 2}).Equal(NewRef(Ref{1, 2})) || NewRef(Ref{1, 2}).Equal(NewRef(Ref{1, 3})) {
		t.Fatal("ref equality broken")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"·":         Nil(),
		"7":         Int(7),
		"2.5":       Float(2.5),
		"true":      Bool(true),
		"ref[5+10]": NewRef(Ref{Base: 5, Len: 10}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind, got, want)
		}
	}
}

func TestActivityNameWithStatement(t *testing.T) {
	a := ActivityName{Context: 3, CodeBlock: 2, Statement: 7, Initiation: 4}
	b := a.WithStatement(9)
	if b.Statement != 9 || b.Context != 3 || b.CodeBlock != 2 || b.Initiation != 4 {
		t.Fatalf("WithStatement changed more than the statement: %v", b)
	}
	if a.Statement != 7 {
		t.Fatal("WithStatement must not mutate the receiver")
	}
}

func TestHomePEDeterministicAndInRange(t *testing.T) {
	if err := quick.Check(func(u uint32, c uint16, s uint16, i uint32, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		tag := Tag{Activity: ActivityName{Context: Context(u), CodeBlock: c, Statement: s, Initiation: i}}
		pe := tag.HomePE(n)
		if pe < 0 || pe >= n {
			return false
		}
		return pe == tag.HomePE(n) // deterministic
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomePEIgnoresStatement(t *testing.T) {
	// Both operands of one instruction, and the instruction fetch itself,
	// must land on the same PE regardless of which statement is addressed.
	a := Tag{Activity: ActivityName{Context: 5, CodeBlock: 1, Statement: 10, Initiation: 3}}
	b := Tag{Activity: ActivityName{Context: 5, CodeBlock: 1, Statement: 99, Initiation: 3}}
	for _, n := range []int{1, 2, 7, 64} {
		if a.HomePE(n) != b.HomePE(n) {
			t.Fatalf("statement field leaked into PE mapping for n=%d", n)
		}
	}
}

func TestHomePESpreadsIterations(t *testing.T) {
	// Different initiations should spread across PEs: that is the whole
	// point of tagging — loop iterations unfold over the machine.
	const n = 16
	seen := map[int]bool{}
	for i := uint32(1); i <= 200; i++ {
		tag := Tag{Activity: ActivityName{Context: 1, CodeBlock: 1, Statement: 0, Initiation: i}}
		seen[tag.HomePE(n)] = true
	}
	if len(seen) < n/2 {
		t.Fatalf("200 iterations only touched %d of %d PEs", len(seen), n)
	}
}

func TestHomePESinglePE(t *testing.T) {
	tag := Tag{Activity: ActivityName{Context: 9, CodeBlock: 9, Statement: 9, Initiation: 9}}
	if tag.HomePE(1) != 0 || tag.HomePE(0) != 0 {
		t.Fatal("degenerate machine sizes must map to PE 0")
	}
}

func TestMatchKeyIdentifiesActivity(t *testing.T) {
	a := Token{Tag: Tag{Activity: ActivityName{Context: 1, CodeBlock: 2, Statement: 3, Initiation: 4}}, Port: 0}
	b := Token{Tag: Tag{Activity: ActivityName{Context: 1, CodeBlock: 2, Statement: 3, Initiation: 4}}, Port: 1}
	if MatchKeyOf(a) != MatchKeyOf(b) {
		t.Fatal("port must not be part of the match key")
	}
	c := b
	c.Tag.Activity.Initiation = 5
	if MatchKeyOf(a) == MatchKeyOf(c) {
		t.Fatal("different iterations must not match")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Class: IStructure, PE: 3, NT: 2, Port: 1, Value: Int(8),
		Tag: Tag{Activity: ActivityName{Context: 1, CodeBlock: 2, Statement: 3, Initiation: 4}}}
	want := "<d=1,PE=3,(u=1,c=2,s=3,i=4),nt=2,port=1,8>"
	if got := tok.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestClassString(t *testing.T) {
	if Normal.String() != "d=0" || IStructure.String() != "d=1" || Control.String() != "d=2" {
		t.Fatal("class strings must follow the paper's d notation")
	}
}
