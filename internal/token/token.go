// Package token defines the data carried between instructions in the
// tagged-token dataflow machine: values, activity names, tags, and tokens.
//
// The formats follow Section 2.2.2 of the paper directly. An activity name
// is the four-tuple (u, c, s, i) — context, code block, statement,
// initiation — and a complete token is
//
//	<d, PE, tag, nt, port, data>
//
// where d classifies the token (d=0 normal, d=1 I-structure, d=2 PE
// controller), PE is the target processing element, nt is the number of
// operands the target instruction requires, and port says which operand
// this token supplies.
package token

import "fmt"

// Class is the d field of a token.
type Class uint8

// Token classes, exactly the d values of the paper.
const (
	Normal     Class = 0 // d=0: operand for an instruction
	IStructure Class = 1 // d=1: I-structure storage request or response
	Control    Class = 2 // d=2: PE controller (manager) request
)

func (c Class) String() string {
	switch c {
	case Normal:
		return "d=0"
	case IStructure:
		return "d=1"
	case Control:
		return "d=2"
	default:
		return fmt.Sprintf("d=%d", uint8(c))
	}
}

// Context identifies one invocation of a code block. Context 0 is the
// top-level (outermost) invocation. Fresh contexts are allocated by the
// machine's context manager; the namespace is conceptually unbounded and is
// mapped onto the finite machine by hashing (see Tag.HomePE).
type Context uint32

// ActivityName is the (u, c, s, i) four-tuple of Section 2.2.2.
type ActivityName struct {
	Context    Context // u: invocation of the code block
	CodeBlock  uint16  // c: which procedure or loop body
	Statement  uint16  // s: instruction number within the code block
	Initiation uint32  // i: loop iteration; 1 outside any loop
}

func (a ActivityName) String() string {
	return fmt.Sprintf("(u=%d,c=%d,s=%d,i=%d)", a.Context, a.CodeBlock, a.Statement, a.Initiation)
}

// WithStatement returns a copy of a addressed to statement s. This is the
// ordinary tag transformation performed by the output section: same
// invocation, same iteration, different instruction.
func (a ActivityName) WithStatement(s uint16) ActivityName {
	a.Statement = s
	return a
}

// Key returns a value usable as a map key identifying the dynamic instance
// of the activity (all four fields). ActivityName is itself comparable;
// Key exists for documentation and to allow future widening.
func (a ActivityName) Key() ActivityName { return a }

// Tag is the runtime name of an activity: the activity name plus mapping
// information. The PE assignment is derived from the activity name by the
// output section (see HomePE) but is carried explicitly on the token, as in
// Figure 2-4's routing translation table.
type Tag struct {
	Activity ActivityName
}

// HomePE maps an activity name onto one of n processing elements. The paper
// maps the unbounded activity namespace onto the machine by hashing; we use
// a deterministic mix of the context, code block, and initiation fields.
// All tokens of the same activity (same u, c, s, i) map to the same PE, and
// the two operands of one instruction therefore always meet in the same
// waiting-matching store. Instructions of one iteration spread across PEs
// via the statement-independent fields only when iterations differ; the
// statement field is deliberately excluded so that a matched pair and its
// instruction fetch stay local.
func (t Tag) HomePE(n int) int {
	if n <= 1 {
		return 0
	}
	a := t.Activity
	h := uint64(a.Context)*0x9E3779B1 ^ uint64(a.CodeBlock)*0x85EBCA77 ^ uint64(a.Initiation)*0xC2B2AE3D
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	return int(h % uint64(n))
}

func (t Tag) String() string { return t.Activity.String() }

// Port numbers for instruction operands.
const (
	PortLeft  = 0
	PortRight = 1
)

// Token is the complete packet circulated by the machine,
// <d, PE, tag, nt, port, data>. Field order groups the three one-byte
// fields after the tag so the struct packs tightly; tokens are the
// simulators' unit of data movement and their size is a first-order
// throughput factor.
type Token struct {
	PE    int   // destination processing element number
	Tag   Tag   // activity name (plus mapping info)
	Class Class // d
	NT    uint8 // total number of operands the target instruction needs
	Port  uint8 // which operand this token supplies
	Value Value // the datum
}

func (t Token) String() string {
	return fmt.Sprintf("<%s,PE=%d,%s,nt=%d,port=%d,%s>", t.Class, t.PE, t.Tag, t.NT, t.Port, t.Value)
}

// MatchKey identifies the rendezvous point in the waiting-matching store:
// two tokens pair when they name the same activity. The port distinguishes
// which side each token supplies and is not part of the key.
type MatchKey struct {
	Activity ActivityName
}

// MatchKeyOf returns the waiting-matching key for a token.
func MatchKeyOf(t Token) MatchKey { return MatchKey{Activity: t.Tag.Activity} }
