package token

import "repro/internal/sim"

// Checkpoint serialization for tokens. The encoding is canonical: only the
// field selected by the value's kind is written, so encode→decode→encode
// is byte-identical regardless of stray union fields.

// SaveValue appends v.
func SaveValue(e *sim.Enc, v Value) {
	e.U8(uint8(v.Kind))
	switch v.Kind {
	case KindNil:
	case KindInt:
		e.I64(v.I)
	case KindFloat:
		e.F64(v.F)
	case KindBool:
		e.Bool(v.B)
	case KindRef:
		e.U32(v.R.Base)
		e.U32(v.R.Len)
	}
}

// LoadValue reads a value, poisoning the decoder on an unknown kind.
func LoadValue(d *sim.Dec) Value {
	k := Kind(d.U8())
	switch k {
	case KindNil:
		return Nil()
	case KindInt:
		return Value{Kind: KindInt, I: d.I64()}
	case KindFloat:
		return Value{Kind: KindFloat, F: d.F64()}
	case KindBool:
		return Value{Kind: KindBool, B: d.Bool()}
	case KindRef:
		return Value{Kind: KindRef, R: Ref{Base: d.U32(), Len: d.U32()}}
	default:
		d.Failf("invalid value kind %d", k)
		return Value{}
	}
}

// SaveActivity appends the (u, c, s, i) four-tuple.
func SaveActivity(e *sim.Enc, a ActivityName) {
	e.U32(uint32(a.Context))
	e.U16(a.CodeBlock)
	e.U16(a.Statement)
	e.U32(a.Initiation)
}

// LoadActivity reads an activity name.
func LoadActivity(d *sim.Dec) ActivityName {
	return ActivityName{
		Context:    Context(d.U32()),
		CodeBlock:  d.U16(),
		Statement:  d.U16(),
		Initiation: d.U32(),
	}
}

// SaveToken appends the complete token <d, PE, tag, nt, port, data>.
func SaveToken(e *sim.Enc, t Token) {
	e.Int(t.PE)
	SaveActivity(e, t.Tag.Activity)
	e.U8(uint8(t.Class))
	e.U8(t.NT)
	e.U8(t.Port)
	SaveValue(e, t.Value)
}

// LoadToken reads a token, poisoning the decoder on an invalid class.
func LoadToken(d *sim.Dec) Token {
	var t Token
	t.PE = d.Int()
	t.Tag.Activity = LoadActivity(d)
	t.Class = Class(d.U8())
	t.NT = d.U8()
	t.Port = d.U8()
	t.Value = LoadValue(d)
	if d.Err() == nil && t.Class > Control {
		d.Failf("invalid token class %d", t.Class)
	}
	return t
}
