// Command critique-serve runs the reproduction as a long-lived
// simulation service: an HTTP/JSON API that accepts MiniID or vn
// assembly programs (or named experiments E1..E14), executes them on a
// chosen machine model through a bounded worker pool, coalesces
// concurrent identical submissions, and serves repeat traffic from a
// content-addressed result cache keyed by (program, machine, config,
// code version). Simulations are deterministic, so cache hits are exact
// replays, byte for byte.
//
// Usage:
//
//	critique-serve                      # listen on :8091
//	critique-serve -addr :9000 -workers 8 -timeout 10s
//
// Submit and fetch:
//
//	curl -s localhost:8091/v1/run -d '{"kind":"minid","machine":"ttda",
//	  "program":"def main(n) = n * 2;","args":[21]}'
//	curl -s localhost:8091/v1/run -d '{"experiment":"E5"}'
//	curl -s localhost:8091/v1/stats
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, queued
// async jobs are cut off at their next engine slice, and the worker
// pool is drained before exit.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	backlog := flag.Int("backlog", 64, "submissions allowed to wait for a worker before 503")
	cacheEntries := flag.Int("cache-entries", 4096, "result cache capacity (entries)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request simulation budget")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default)")
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:      *workers,
		Backlog:      *backlog,
		CacheEntries: *cacheEntries,
		Timeout:      *timeout,
		MaxBody:      *maxBody,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("critique-serve: %v — draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("critique-serve: shutdown: %v", err)
		}
	}()

	log.Printf("critique-serve: listening on %s (code %s, %d workers)", *addr, s.CodeVersion(), *workers)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("critique-serve: %v", err)
	}
	<-done
	s.Close()
	log.Print("critique-serve: drained")
}
