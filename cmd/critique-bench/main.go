// Command critique-bench runs the full reproduction suite: experiments
// E1-E12, one per figure or quantitative claim of the paper (see DESIGN.md
// for the index), and prints their tables and findings. The recorded
// output lives in EXPERIMENTS.md.
//
// Usage:
//
//	critique-bench             # full sweeps (a few minutes)
//	critique-bench -quick      # reduced sweeps (seconds)
//	critique-bench -only E4,E9
//	critique-bench -markdown   # emit the EXPERIMENTS.md body
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E9,A2)")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md-formatted output")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	ablations := flag.Bool("ablations", true, "include the A-series design ablations")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		s = strings.TrimSpace(strings.ToUpper(s))
		if s != "" {
			want[s] = true
		}
	}

	results := experiments.All(experiments.Options{Quick: *quick})
	if *ablations {
		results = append(results, experiments.Ablations(experiments.Options{Quick: *quick})...)
	}
	failed := 0
	var selected []experiments.Result
	for _, r := range results {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
		if r.Err != nil {
			failed++
		}
	}
	switch {
	case *jsonOut:
		printJSON(selected)
	case *markdown:
		for _, r := range selected {
			printMarkdown(r)
		}
	default:
		for _, r := range selected {
			fmt.Println(r)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "critique-bench: %d experiments failed\n", failed)
		os.Exit(1)
	}
}

// jsonResult shadows experiments.Result with a marshalable error field.
type jsonResult struct {
	ID      string           `json:"id"`
	Title   string           `json:"title"`
	Anchor  string           `json:"anchor"`
	Claim   string           `json:"claim"`
	Tables  []*metrics.Table `json:"tables"`
	Finding string           `json:"finding,omitempty"`
	Error   string           `json:"error,omitempty"`
}

func printJSON(results []experiments.Result) {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		jr := jsonResult{ID: r.ID, Title: r.Title, Anchor: r.Anchor,
			Claim: r.Claim, Tables: r.Tables, Finding: r.Finding}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "critique-bench:", err)
		os.Exit(1)
	}
}

func printMarkdown(r experiments.Result) {
	fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
	fmt.Printf("*Paper anchor:* %s\n\n", r.Anchor)
	fmt.Printf("*Paper claim:* %s\n\n", r.Claim)
	if r.Err != nil {
		fmt.Printf("**ERROR:** %v\n\n", r.Err)
		return
	}
	for _, t := range r.Tables {
		fmt.Println("```")
		fmt.Print(t.String())
		fmt.Println("```")
		fmt.Println()
	}
	fmt.Printf("*Measured:* %s\n\n", r.Finding)
}
