// Command critique-bench runs the full reproduction suite: experiments
// E1-E12, one per figure or quantitative claim of the paper (see DESIGN.md
// for the index), and prints their tables and findings. The recorded
// output lives in EXPERIMENTS.md.
//
// Usage:
//
//	critique-bench             # full sweeps (a few minutes)
//	critique-bench -quick      # reduced sweeps (seconds)
//	critique-bench -only E4,E9
//	critique-bench -markdown   # emit the EXPERIMENTS.md body
//	critique-bench -bench BENCH.json   # also write kernel-speed measurements
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/token"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E9,A2)")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md-formatted output")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	ablations := flag.Bool("ablations", true, "include the A-series design ablations")
	benchOut := flag.String("bench", "", "write simulator-speed benchmark results (Mcycles/s, Minstr/s, sweep wall time) to this JSON file")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		s = strings.TrimSpace(strings.ToUpper(s))
		if s != "" {
			want[s] = true
		}
	}

	sweepStart := time.Now()
	results := experiments.All(experiments.Options{Quick: *quick})
	if *ablations {
		results = append(results, experiments.Ablations(experiments.Options{Quick: *quick})...)
	}
	sweepWall := time.Since(sweepStart)
	failed := 0
	var selected []experiments.Result
	for _, r := range results {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
		if r.Err != nil {
			failed++
		}
	}
	switch {
	case *jsonOut:
		printJSON(selected)
	case *markdown:
		for _, r := range selected {
			printMarkdown(r)
		}
	default:
		for _, r := range selected {
			fmt.Println(r)
		}
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, *quick, len(selected), sweepWall); err != nil {
			fmt.Fprintln(os.Stderr, "critique-bench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "critique-bench: %d experiments failed\n", failed)
		os.Exit(1)
	}
}

// benchReport is the schema of the -bench JSON file, for tracking
// simulator speed across revisions (BENCH_*.json).
type benchReport struct {
	Quick bool `json:"quick"`
	// SweepWallMs is the wall time of the full experiment sweep run by
	// this invocation, and SweepExperiments the experiment count behind it.
	SweepWallMs      float64 `json:"sweep_wall_ms"`
	SweepExperiments int     `json:"sweep_experiments"`
	// Kernel speed: matmul(4) on 8 PEs, the BenchmarkTTDAMachine workload.
	KernelProgram   string  `json:"kernel_program"`
	KernelPEs       int     `json:"kernel_pes"`
	KernelRuns      int     `json:"kernel_runs"`
	KernelSimCycles uint64  `json:"kernel_sim_cycles"`
	KernelInstrs    uint64  `json:"kernel_instructions"`
	KernelWallMs    float64 `json:"kernel_wall_ms_per_run"`
	McyclesPerSec   float64 `json:"mcycles_per_sec"`
	MinstrPerSec    float64 `json:"minstr_per_sec"`
}

// writeBench measures cycle-accurate-kernel simulation speed on the
// BenchmarkTTDAMachine workload and writes the report to path.
func writeBench(path string, quick bool, experimentCount int, sweepWall time.Duration) error {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		return err
	}
	runs := 10
	if quick {
		runs = 3
	}
	var cycles, instrs uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		m := core.NewMachine(core.Config{PEs: 8}, prog)
		if _, err := m.Run(1_000_000_000, token.Int(4)); err != nil {
			return err
		}
		s := m.Summarize()
		cycles, instrs = s.Cycles, s.Fired
	}
	wall := time.Since(start)
	rep := benchReport{
		Quick:            quick,
		SweepWallMs:      float64(sweepWall.Microseconds()) / 1e3,
		SweepExperiments: experimentCount,
		KernelProgram:    "matmul(4)",
		KernelPEs:        8,
		KernelRuns:       runs,
		KernelSimCycles:  cycles,
		KernelInstrs:     instrs,
		KernelWallMs:     float64(wall.Microseconds()) / 1e3 / float64(runs),
		McyclesPerSec:    float64(cycles) * float64(runs) / wall.Seconds() / 1e6,
		MinstrPerSec:     float64(instrs) * float64(runs) / wall.Seconds() / 1e6,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "critique-bench: wrote %s (%.2f Mcycles/s, %.2f Minstr/s, sweep %.0f ms)\n",
		path, rep.McyclesPerSec, rep.MinstrPerSec, rep.SweepWallMs)
	return f.Close()
}

// jsonResult shadows experiments.Result with a marshalable error field.
type jsonResult struct {
	ID      string           `json:"id"`
	Title   string           `json:"title"`
	Anchor  string           `json:"anchor"`
	Claim   string           `json:"claim"`
	Tables  []*metrics.Table `json:"tables"`
	Finding string           `json:"finding,omitempty"`
	Error   string           `json:"error,omitempty"`
}

func printJSON(results []experiments.Result) {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		jr := jsonResult{ID: r.ID, Title: r.Title, Anchor: r.Anchor,
			Claim: r.Claim, Tables: r.Tables, Finding: r.Finding}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "critique-bench:", err)
		os.Exit(1)
	}
}

func printMarkdown(r experiments.Result) {
	fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
	fmt.Printf("*Paper anchor:* %s\n\n", r.Anchor)
	fmt.Printf("*Paper claim:* %s\n\n", r.Claim)
	if r.Err != nil {
		fmt.Printf("**ERROR:** %v\n\n", r.Err)
		return
	}
	for _, t := range r.Tables {
		fmt.Println("```")
		fmt.Print(t.String())
		fmt.Println("```")
		fmt.Println()
	}
	fmt.Printf("*Measured:* %s\n\n", r.Finding)
}
