// Command critique-bench runs the full reproduction suite: experiments
// E1-E12, one per figure or quantitative claim of the paper (see DESIGN.md
// for the index), and prints their tables and findings. The recorded
// output lives in EXPERIMENTS.md.
//
// Usage:
//
//	critique-bench             # full sweeps (a few minutes)
//	critique-bench -quick      # reduced sweeps (seconds)
//	critique-bench -only E4,E9
//	critique-bench -markdown   # emit the EXPERIMENTS.md body
//	critique-bench -bench BENCH.json   # also write kernel-speed measurements
//	critique-bench -conformance 25     # cross-machine conformance smoke run
//	critique-bench -checkpoint-every 2000      # split-run self-check
//	critique-bench -resume CKPT.bin            # resume and verify the split run
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/machines/cmmp"
	"repro/internal/machines/cmstar"
	"repro/internal/machines/ultra"
	"repro/internal/machines/vliw"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/vn"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E9,A2)")
	markdown := flag.Bool("markdown", false, "emit EXPERIMENTS.md-formatted output")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	ablations := flag.Bool("ablations", true, "include the A-series design ablations")
	benchOut := flag.String("bench", "", "write simulator-speed benchmark results (Mcycles/s, Minstr/s, sweep wall time) to this JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	confSmoke := flag.Int("conformance", 0, "run N seeds of the cross-machine conformance harness and exit (nonzero exit on any violation)")
	shards := flag.Int("shards", 0, "run shardable machines on the conservative parallel kernel with N shards (0 = sequential; results are bit-identical either way)")
	sweepWorkers := flag.Int("sweep-workers", 0, "bound the parallel sweep runner's worker pool for experiment and conformance sweeps (<= 0 = GOMAXPROCS; results are identical at any setting)")
	compiled := flag.Bool("compiled", false, "run TTDA simulations through the ahead-of-time compiled execution plan (results are bit-identical either way)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "run the kernel workload pausing every N cycles to checkpoint, verify the split run is cycle-for-cycle identical to a straight run, and exit")
	ckptOut := flag.String("checkpoint-out", "critique-bench.ckpt", "checkpoint file for -checkpoint-every")
	resumeFrom := flag.String("resume", "", "resume the kernel workload from this checkpoint file, verify against a straight run, and exit")
	flag.Parse()

	if *ckptEvery > 0 || *resumeFrom != "" {
		if err := checkpointSelfCheck(*ckptEvery, *ckptOut, *resumeFrom); err != nil {
			fmt.Fprintln(os.Stderr, "critique-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *confSmoke > 0 {
		rep := conformance.SweepOpts(*confSmoke, *sweepWorkers)
		fmt.Println(rep.Summary())
		if len(rep.Violations) > 0 {
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "critique-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "critique-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "critique-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "critique-bench:", err)
			}
		}()
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		s = strings.TrimSpace(strings.ToUpper(s))
		if s != "" {
			want[s] = true
		}
	}

	sweepStart := time.Now()
	results := experiments.All(experiments.Options{Quick: *quick, Shards: *shards, Compiled: *compiled, SweepWorkers: *sweepWorkers})
	if *ablations {
		results = append(results, experiments.Ablations(experiments.Options{Quick: *quick, Compiled: *compiled, SweepWorkers: *sweepWorkers})...)
	}
	sweepWall := time.Since(sweepStart)
	failed := 0
	var selected []experiments.Result
	for _, r := range results {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
		if r.Err != nil {
			failed++
		}
	}
	switch {
	case *jsonOut:
		printJSON(selected)
	case *markdown:
		for _, r := range selected {
			printMarkdown(r)
		}
	default:
		for _, r := range selected {
			fmt.Println(r)
		}
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, *quick, *sweepWorkers, selected, sweepWall); err != nil {
			fmt.Fprintln(os.Stderr, "critique-bench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "critique-bench: %d experiments failed\n", failed)
		os.Exit(1)
	}
}

// benchSchemaVersion identifies the layout of the -bench JSON document.
// Bump it on any incompatible field change so downstream consumers (the
// future content-addressed result cache) can refuse stale layouts instead
// of misreading them. Version 2 added epoch-window columns to the shard
// sweep (one row per shards × window × latency point) plus the
// sweep_workers and barrier_ns_per_epoch fields. Version 3 added the
// direct-execution oracle backend fields (direct_wall_ms_per_run,
// direct_mfirings_per_sec, direct_speedup_vs_interpreted).
const benchSchemaVersion = 3

// checkpointSelfCheck demonstrates and verifies split-run bit-identity on
// the kernel workload (matmul(4) on 8 PEs): a run paused every `every`
// cycles — or resumed from a prior checkpoint file — must match a
// straight uninterrupted run cycle-for-cycle, statistic-for-statistic,
// and byte-for-byte in its end-of-run checkpoint.
func checkpointSelfCheck(every uint64, out, resumeFrom string) error {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		return err
	}
	build := func() *core.Machine { return core.NewMachine(core.Config{PEs: 8}, prog) }
	args := []token.Value{token.Int(4)}

	ref := build()
	if _, err := ref.Run(1_000_000_000, args...); err != nil {
		return err
	}
	refBytes := sim.Checkpoint(ref)

	m := build()
	if resumeFrom != "" {
		data, err := os.ReadFile(resumeFrom)
		if err != nil {
			return err
		}
		if err := sim.Restore(m, data); err != nil {
			return fmt.Errorf("resume %s: %v", resumeFrom, err)
		}
		fmt.Printf("resumed from %s at cycle %d\n", resumeFrom, m.Engine().Now())
	}
	wrote := 0
	for {
		_, err := m.Run(splitBudget(every), args...)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "did not finish") {
			return err
		}
		if every == 0 {
			return fmt.Errorf("resumed run did not finish: %v", err)
		}
		if werr := os.WriteFile(out, sim.Checkpoint(m), 0o644); werr != nil {
			return werr
		}
		wrote++
	}
	if got, want := m.Summarize().Cycles, ref.Summarize().Cycles; got != want {
		return fmt.Errorf("split run took %d cycles, straight run %d — bit-identity broken", got, want)
	}
	if !bytes.Equal(sim.Checkpoint(m), refBytes) {
		return fmt.Errorf("split run end state differs from straight run — bit-identity broken")
	}
	if wrote > 0 {
		fmt.Printf("wrote %d checkpoints to %s\n", wrote, out)
	}
	fmt.Printf("checkpoint self-check passed: split run matches straight run (%d cycles, %d-byte end state)\n",
		ref.Summarize().Cycles, len(refBytes))
	return nil
}

// splitBudget is the per-Run cycle budget of the self-check loop: `every`
// when periodic checkpointing is on, effectively unbounded when only
// resuming.
func splitBudget(every uint64) sim.Cycle {
	if every == 0 {
		return 1_000_000_000
	}
	return sim.Cycle(every)
}

// benchReport is the schema of the -bench JSON file, for tracking
// simulator speed across revisions (BENCH_*.json).
type benchReport struct {
	// SchemaVersion and CodeVersion identify the document layout and the
	// producing code revision; see benchSchemaVersion and
	// buildinfo.CodeVersion.
	SchemaVersion int    `json:"schema_version"`
	CodeVersion   string `json:"code_version"`

	Quick bool `json:"quick"`
	// GoMaxProcs is the scheduler-thread count of the measuring host. A
	// 1-CPU environment cannot exhibit parallel-kernel speedup (the
	// engine steps shards inline there); readers of KernelShards need
	// this to interpret the speedup column.
	GoMaxProcs int `json:"gomaxprocs"`
	// SweepWallMs is the wall time of the full experiment sweep run by
	// this invocation, and SweepExperiments the experiment count behind it.
	SweepWallMs      float64 `json:"sweep_wall_ms"`
	SweepExperiments int     `json:"sweep_experiments"`
	// ExperimentWallMs breaks the sweep down per experiment id.
	ExperimentWallMs map[string]float64 `json:"experiment_wall_ms"`
	// Kernel speed: matmul(4) on 8 PEs, the BenchmarkTTDAMachine workload.
	KernelProgram   string  `json:"kernel_program"`
	KernelPEs       int     `json:"kernel_pes"`
	KernelRuns      int     `json:"kernel_runs"`
	KernelSimCycles uint64  `json:"kernel_sim_cycles"`
	KernelInstrs    uint64  `json:"kernel_instructions"`
	KernelWallMs    float64 `json:"kernel_wall_ms_per_run"`
	McyclesPerSec   float64 `json:"mcycles_per_sec"`
	MinstrPerSec    float64 `json:"minstr_per_sec"`
	// CompileMs is the one-time graph.Compile cost (constant folding and
	// dead-arc elimination included) for the kernel program, and
	// CompiledMcyclesPerSec the kernel's throughput when the machine runs
	// the precompiled plan instead of interpreting the graph. Simulated
	// cycles are bit-identical between the two modes; only wall time moves.
	CompileMs             float64 `json:"compile_ms"`
	CompiledKernelWallMs  float64 `json:"compiled_kernel_wall_ms_per_run"`
	CompiledMcyclesPerSec float64 `json:"compiled_mcycles_per_sec"`
	// DirectWorkloads times the direct-execution oracle backend against
	// the interpreted TTDA (8 PEs, same program and argument, results and
	// firing counts asserted bit-identical to the reference interpreter on
	// every run): one row per workload, because the speedup is shape-
	// dependent — loop-circulation firings collapse into native Go loops
	// (two orders of magnitude), while recursion-heavy graphs only shed
	// the cycle model (single digits). The headline DirectRuns/DirectWallMs/
	// DirectMfiringsSec/DirectSpeedup fields repeat the DirectProgram row —
	// the loop workload, where the backend's reason to exist lives. Like
	// all wall numbers here they inherit this host's run-to-run noise (see
	// GoMaxProcs); the ratio's magnitude, not its third digit, is the claim.
	DirectProgram     string        `json:"direct_program"`
	DirectRuns        int           `json:"direct_runs"`
	DirectWallMs      float64       `json:"direct_wall_ms_per_run"`
	DirectMfiringsSec float64       `json:"direct_mfirings_per_sec"`
	DirectSpeedup     float64       `json:"direct_speedup_vs_interpreted"`
	DirectWorkloads   []directBench `json:"direct_workloads"`
	// KernelCounters reports the engine's scheduling counters for one
	// kernel run: component steps actually executed, cycles the wake-queue
	// jumped over, and wakes enqueued. steps_executed against sim_cycles is
	// the sparse-activation win in one ratio.
	KernelCounters sim.Counters `json:"kernel_engine_counters"`
	// SweepWorkers echoes the -sweep-workers bound this run used for the
	// experiment sweep (0 = GOMAXPROCS).
	SweepWorkers int `json:"sweep_workers"`
	// SweepScaling times one fixed conformance sweep at several worker
	// counts on the shared sweep runner; on a single-CPU host (see
	// GoMaxProcs) the speedup column cannot exceed 1.0.
	SweepScaling []sweepScaleBench `json:"sweep_scaling"`
	// BarrierNsPerEpoch is the measured cost of one fork/join epoch round
	// trip — arming, worker wake, the sense-reversing barrier, and the
	// commit scan — on two shard runners that do no simulated work. On a
	// single-CPU host (see GoMaxProcs) shards step inline and this measures
	// only the scan overhead.
	BarrierNsPerEpoch float64 `json:"barrier_ns_per_epoch"`
	// KernelShards sweeps the same kernel workload across parallel-kernel
	// shard counts, epoch-window settings, and fabric latencies: one row per
	// (shards, epoch_window, net_latency) point, with shards=1 rows running
	// the sequential engine and anchoring the speedup column for their
	// latency. Simulated cycles are identical across rows at equal latency
	// (bit-identity); wall time, window widths, and the per-worker step
	// counters are what move.
	KernelShards []kernelShardBench `json:"kernel_shards"`
	// Baselines records simulated-cycle throughput for the von Neumann
	// baseline machines on their experiment workloads, so baseline
	// simulator speed is tracked across revisions alongside the TTDA kernel.
	Baselines []baselineBench `json:"baselines"`
}

// kernelShardBench is one (shards, epoch_window, net_latency) point's
// measurement on the shard-sweep kernel workload.
type kernelShardBench struct {
	Shards int `json:"shards"`
	// NetLatency is the ideal fabric's transit latency — the parallel
	// kernel's lookahead, and with windows on, the adaptive horizon's reach.
	NetLatency uint64 `json:"net_latency"`
	// EpochWindow is the configured window width: 0/1 per-tick epochs,
	// negative adaptive (horizon-bounded).
	EpochWindow   int     `json:"epoch_window"`
	Runs          int     `json:"runs"`
	SimCycles     uint64  `json:"sim_cycles"`
	WallMsPerRun  float64 `json:"wall_ms_per_run"`
	McyclesPerSec float64 `json:"mcycles_per_sec"`
	// SpeedupVsSeq is the same-latency sequential row's wall time divided
	// by this entry's wall time (1.0 for shards=1 rows by construction).
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
	// EpochWindows and WindowCycles report how many multi-tick windows the
	// run executed and how many simulated cycles they covered (both zero
	// for per-tick rows).
	EpochWindows uint64 `json:"epoch_windows"`
	WindowCycles uint64 `json:"window_cycles"`
	// WorkerSteps counts shard steps executed per worker goroutine
	// (empty for the sequential rows).
	WorkerSteps []uint64 `json:"worker_steps,omitempty"`
}

// baselineBench is one baseline machine's throughput measurement.
type baselineBench struct {
	Machine       string  `json:"machine"`
	Workload      string  `json:"workload"`
	Runs          int     `json:"runs"`
	SimCycles     uint64  `json:"sim_cycles"`
	WallMsPerRun  float64 `json:"wall_ms_per_run"`
	McyclesPerSec float64 `json:"mcycles_per_sec"`
	// Counters holds the engine's scheduling counters for the last run
	// (zero for machines that do not expose their engine).
	Counters sim.Counters `json:"engine_counters"`
}

// benchBaselines times each baseline machine on a workload shaped like its
// experiment (E2 multithreaded vn, E7 C.mmp, E8 Cm*, E9 Ultracomputer,
// E12 VLIW). Each entry reports simulated Mcycles per wall-second.
func benchBaselines(runs int) ([]baselineBench, error) {
	cases := []struct {
		machine, workload string
		run               func() (sim.Cycle, sim.Counters, error)
	}{
		{"vn-16ctx", "E2-style memloop, latency 200", func() (sim.Cycle, sim.Counters, error) {
			prog, err := vn.Assemble(workload.MemLoopASM)
			if err != nil {
				return 0, sim.Counters{}, err
			}
			mem := vn.NewLatencyMemory(200)
			c := vn.NewCore(prog, mem, 16)
			for i := 0; i < 16; i++ {
				c.Context(i).SetReg(1, vn.Word(1000+1000*i))
				c.Context(i).SetReg(4, 100)
			}
			eng := sim.NewEngine()
			eng.Register(mem)
			eng.Register(c)
			elapsed, ok := eng.Run(c.Halted, 20_000_000)
			if !ok {
				return 0, sim.Counters{}, fmt.Errorf("bench vn: run did not halt")
			}
			return elapsed, eng.Counters(), nil
		}},
		{"cmmp", "E7-style lock-protected counter, 8 processors", func() (sim.Cycle, sim.Counters, error) {
			prog, err := vn.Assemble(workload.CounterLockASM)
			if err != nil {
				return 0, sim.Counters{}, err
			}
			m := cmmp.New(cmmp.Config{Processors: 8, Banks: 8}, prog, 1)
			for q := 0; q < 8; q++ {
				m.Core(q).Context(0).SetReg(5, 50)
			}
			elapsed, err := m.Run(50_000_000)
			return elapsed, m.Engine().Counters(), err
		}},
		{"cmstar", "E8-style cross-cluster memloop, distance 2", func() (sim.Cycle, sim.Counters, error) {
			prog, err := vn.Assemble(workload.MemLoopASM)
			if err != nil {
				return 0, sim.Counters{}, err
			}
			const clusterWords = 4096
			m := cmstar.New(cmstar.Config{Clusters: 4, CoresPerCluster: 1, ClusterWords: clusterWords}, prog)
			for i := 1; i < m.NumCores(); i++ {
				m.CoreAt(i).Context(0).SetPC(len(prog.Instrs) - 1)
			}
			h := m.Core(0, 0).Context(0)
			h.SetReg(1, vn.Word(2*clusterWords))
			h.SetReg(4, 100)
			elapsed, err := m.Run(10_000_000)
			return elapsed, m.Engine().Counters(), err
		}},
		{"ultra", "E9-style hotspot faa loop, 16 processors, combining", func() (sim.Cycle, sim.Counters, error) {
			// HotspotASM issues a single faa; loop it so the measurement
			// covers the combining network, not machine setup.
			prog, err := vn.Assemble(`
loop:   li   r1, 0
        li   r2, 1
        faa  r3, r1, r2
        st   r3, r4, 0
        addi r5, r5, -1
        bne  r5, r0, loop
        halt
`)
			if err != nil {
				return 0, sim.Counters{}, err
			}
			m := ultra.New(ultra.Config{LogProcessors: 4, Combining: true}, prog)
			for p := 0; p < m.NumProcessors(); p++ {
				m.Core(p).Context(0).SetReg(4, vn.Word(1000+p))
				m.Core(p).Context(0).SetReg(5, 100)
			}
			elapsed, err := m.Run(20_000_000)
			return elapsed, m.Engine().Counters(), err
		}},
		{"vliw", "E12-style synthetic schedule, 2000 bundles", func() (sim.Cycle, sim.Counters, error) {
			sched := vliw.SyntheticSchedule(2000, 4, 2, 4)
			res := vliw.Run(sched, vliw.Config{HitLatency: 3, MissLatency: 20, MissRate: 0.05, Seed: 11})
			return res.Cycles, res.Engine, nil
		}},
	}
	var out []baselineBench
	for _, bc := range cases {
		var cycles sim.Cycle
		var counters sim.Counters
		start := time.Now()
		for i := 0; i < runs; i++ {
			c, cnt, err := bc.run()
			if err != nil {
				return nil, err
			}
			cycles = c
			counters = cnt
		}
		wall := time.Since(start)
		out = append(out, baselineBench{
			Machine:       bc.machine,
			Workload:      bc.workload,
			Runs:          runs,
			SimCycles:     uint64(cycles),
			WallMsPerRun:  float64(wall.Microseconds()) / 1e3 / float64(runs),
			McyclesPerSec: float64(cycles) * float64(runs) / fmaxf(1e-9, wall.Seconds()) / 1e6,
			Counters:      counters,
		})
	}
	return out, nil
}

func fmaxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// writeBench measures cycle-accurate-kernel simulation speed on the
// BenchmarkTTDAMachine workload and writes the report to path.
func writeBench(path string, quick bool, sweepWorkers int, selected []experiments.Result, sweepWall time.Duration) error {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		return err
	}
	runs := 10
	if quick {
		runs = 3
	}
	var cycles, instrs uint64
	var kernelCounters sim.Counters
	start := time.Now()
	for i := 0; i < runs; i++ {
		m := core.NewMachine(core.Config{PEs: 8}, prog)
		if _, err := m.Run(1_000_000_000, token.Int(4)); err != nil {
			return err
		}
		s := m.Summarize()
		cycles, instrs = s.Cycles, s.Fired
		kernelCounters = m.Engine().Counters()
	}
	wall := time.Since(start)

	// Compiled mode on the same kernel: one plan build (timed), then the
	// same run loop against the plan. Bit-identity with the interpreted
	// runs above is asserted, not assumed.
	compileStart := time.Now()
	plan, err := graph.Compile(prog, graph.WithConstantFolding(), graph.WithDeadArcElimination())
	if err != nil {
		return err
	}
	compileWall := time.Since(compileStart)
	var cCycles uint64
	cStart := time.Now()
	for i := 0; i < runs; i++ {
		m := core.NewMachineWithPlan(core.Config{PEs: 8}, plan)
		if _, err := m.Run(1_000_000_000, token.Int(4)); err != nil {
			return err
		}
		cCycles = m.Summarize().Cycles
	}
	cWall := time.Since(cStart)
	if cCycles != cycles {
		return fmt.Errorf("compiled kernel simulated %d cycles, interpreted %d — bit-identity broken", cCycles, cycles)
	}

	directRows, err := benchDirect(quick)
	if err != nil {
		return err
	}

	perExp := make(map[string]float64, len(selected))
	for _, r := range selected {
		perExp[r.ID] = float64(r.Wall.Microseconds()) / 1e3
	}
	shardSweep, err := benchKernelShards(quick)
	if err != nil {
		return err
	}
	rep := benchReport{
		SchemaVersion:    benchSchemaVersion,
		CodeVersion:      buildinfo.CodeVersion(),
		Quick:            quick,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		SweepWallMs:      float64(sweepWall.Microseconds()) / 1e3,
		SweepExperiments: len(selected),
		ExperimentWallMs: perExp,
		KernelProgram:    "matmul(4)",
		KernelPEs:        8,
		KernelRuns:       runs,
		KernelSimCycles:  cycles,
		KernelInstrs:     instrs,
		KernelWallMs:     float64(wall.Microseconds()) / 1e3 / float64(runs),
		McyclesPerSec:    float64(cycles) * float64(runs) / wall.Seconds() / 1e6,
		MinstrPerSec:     float64(instrs) * float64(runs) / wall.Seconds() / 1e6,
		KernelCounters:   kernelCounters,
		KernelShards:     shardSweep,

		SweepWorkers:      sweepWorkers,
		SweepScaling:      benchSweepScaling(quick),
		BarrierNsPerEpoch: benchBarrier(),

		CompileMs:             float64(compileWall.Microseconds()) / 1e3,
		CompiledKernelWallMs:  float64(cWall.Microseconds()) / 1e3 / float64(runs),
		CompiledMcyclesPerSec: float64(cCycles) * float64(runs) / fmaxf(1e-9, cWall.Seconds()) / 1e6,

		DirectWorkloads: directRows,
	}
	for _, row := range directRows {
		if row.Program != directHeadline {
			continue
		}
		rep.DirectProgram = row.Program
		rep.DirectRuns = row.DirectRuns
		rep.DirectWallMs = row.DirectWallMs
		rep.DirectMfiringsSec = row.DirectMfiringsSec
		rep.DirectSpeedup = row.Speedup
	}
	if rep.Baselines, err = benchBaselines(runs); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "critique-bench: wrote %s (%.2f Mcycles/s interpreted, %.2f compiled, direct %s %.3f ms/run = %.0fx, compile %.1f ms, sweep %.0f ms)\n",
		path, rep.McyclesPerSec, rep.CompiledMcyclesPerSec, rep.DirectProgram, rep.DirectWallMs, rep.DirectSpeedup, rep.CompileMs, rep.SweepWallMs)
	return f.Close()
}

// directHeadline names the direct_workloads row the headline direct_*
// fields repeat: the loop workload, where loop circulation collapses
// into native control flow and the backend earns its keep.
const directHeadline = "sumloop(20000)"

// directBench is one row of the direct-vs-interpreted table: the same
// program and argument on the interpreted TTDA (8 PEs) and on the
// direct-execution oracle backend.
type directBench struct {
	Program           string  `json:"program"`
	Arg               int64   `json:"arg"`
	TTDARuns          int     `json:"ttda_runs"`
	TTDAWallMs        float64 `json:"ttda_wall_ms_per_run"`
	DirectRuns        int     `json:"direct_runs"`
	DirectWallMs      float64 `json:"direct_wall_ms_per_run"`
	DirectMfiringsSec float64 `json:"direct_mfirings_per_sec"`
	Speedup           float64 `json:"speedup_vs_interpreted"`
}

// benchDirect measures the direct backend against the interpreted TTDA
// on three workload shapes. Every direct run's results are asserted
// bit-identical to the reference interpreter's, and the firing count
// must match too (the firing multiset of a dataflow graph is
// schedule-invariant). The direct side gets many more reps than the
// simulated side because each run is orders of magnitude shorter.
func benchDirect(quick bool) ([]directBench, error) {
	runs := 10
	if quick {
		runs = 3
	}
	cases := []struct {
		name string
		src  string
		arg  int64
	}{
		{"matmul(4)", workload.MatMulID, 4},
		{directHeadline, workload.SumLoopID, 20000},
		{"fib(18)", workload.FibID, 18},
	}
	rows := make([]directBench, 0, len(cases))
	for _, c := range cases {
		prog, err := id.Compile(c.src)
		if err != nil {
			return nil, err
		}
		tStart := time.Now()
		for i := 0; i < runs; i++ {
			m := core.NewMachine(core.Config{PEs: 8}, prog)
			if _, err := m.Run(1_000_000_000, token.Int(c.arg)); err != nil {
				return nil, err
			}
		}
		tWall := time.Since(tStart)

		it := graph.NewInterp(prog)
		ref, err := it.Run(token.Int(c.arg))
		if err != nil {
			return nil, err
		}
		dRuns := runs * 20
		var dFired uint64
		dStart := time.Now()
		for i := 0; i < dRuns; i++ {
			x := direct.New(prog)
			res, err := x.Run(token.Int(c.arg))
			if err != nil {
				return nil, err
			}
			if len(res) != len(ref) {
				return nil, fmt.Errorf("direct %s returned %d results, interpreter %d", c.name, len(res), len(ref))
			}
			for j := range res {
				if !res[j].Equal(ref[j]) {
					return nil, fmt.Errorf("direct %s result %d = %s, interpreter %s — bit-identity broken", c.name, j, res[j], ref[j])
				}
			}
			if x.Fired() != it.Fired() {
				return nil, fmt.Errorf("direct %s fired %d instructions, interpreter %d", c.name, x.Fired(), it.Fired())
			}
			dFired = x.Fired()
		}
		dWall := time.Since(dStart)

		row := directBench{
			Program:           c.name,
			Arg:               c.arg,
			TTDARuns:          runs,
			TTDAWallMs:        float64(tWall.Microseconds()) / 1e3 / float64(runs),
			DirectRuns:        dRuns,
			DirectWallMs:      float64(dWall.Microseconds()) / 1e3 / float64(dRuns),
			DirectMfiringsSec: float64(dFired) * float64(dRuns) / fmaxf(1e-9, dWall.Seconds()) / 1e6,
		}
		row.Speedup = row.TTDAWallMs / fmaxf(1e-9, row.DirectWallMs)
		rows = append(rows, row)
	}
	return rows, nil
}

// benchKernelShards times the TTDA shard-sweep kernel — matmul(6) on 8
// PEs, enough parallel work for the worker goroutines to amortize the
// per-epoch barrier — across (shards, epoch_window, net_latency) points.
// Each latency's shards=1 row runs the sequential engine and anchors that
// latency's speedup column; the lat=32 rows show what the adaptive window
// buys when the fabric's lookahead is wide.
func benchKernelShards(quick bool) ([]kernelShardBench, error) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		return nil, err
	}
	n := token.Int(6)
	runs := 5
	if quick {
		n = token.Int(4)
		runs = 2
	}
	points := []struct {
		shards, window int
		latency        sim.Cycle
	}{
		{1, 0, 2},
		{2, 1, 2}, {2, -1, 2},
		{4, 1, 2}, {4, -1, 2},
		{8, 1, 2}, {8, -1, 2},
		{1, 0, 32},
		{2, 1, 32}, {2, -1, 32},
	}
	seqWall := map[sim.Cycle]float64{}
	seqCycles := map[sim.Cycle]uint64{}
	var out []kernelShardBench
	for _, pt := range points {
		var cycles, windows, winCycles uint64
		var workers []uint64
		start := time.Now()
		for i := 0; i < runs; i++ {
			m := core.NewMachine(core.Config{PEs: 8, Shards: pt.shards, EpochWindow: pt.window, NetLatency: pt.latency}, prog)
			if _, err := m.Run(1_000_000_000, n); err != nil {
				return nil, err
			}
			cycles = m.Summarize().Cycles
			workers = m.WorkerSteps()
			windows, winCycles = m.WindowStats()
		}
		wall := time.Since(start)
		b := kernelShardBench{
			Shards:        pt.shards,
			NetLatency:    uint64(pt.latency),
			EpochWindow:   pt.window,
			Runs:          runs,
			SimCycles:     cycles,
			WallMsPerRun:  float64(wall.Microseconds()) / 1e3 / float64(runs),
			McyclesPerSec: float64(cycles) * float64(runs) / fmaxf(1e-9, wall.Seconds()) / 1e6,
			EpochWindows:  windows,
			WindowCycles:  winCycles,
			WorkerSteps:   workers,
		}
		if pt.shards == 1 {
			b.SpeedupVsSeq = 1
			seqWall[pt.latency] = b.WallMsPerRun
			seqCycles[pt.latency] = cycles
		} else {
			b.SpeedupVsSeq = seqWall[pt.latency] / fmaxf(1e-9, b.WallMsPerRun)
			if cycles != seqCycles[pt.latency] {
				return nil, fmt.Errorf("shard sweep: shards=%d window=%d lat=%d simulated %d cycles, sequential simulated %d — bit-identity broken",
					pt.shards, pt.window, pt.latency, cycles, seqCycles[pt.latency])
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// sweepScaleBench is one worker count's wall time on the fixed
// sweep-scaling workload.
type sweepScaleBench struct {
	Workers int     `json:"workers"`
	Seeds   int     `json:"seeds"`
	WallMs  float64 `json:"wall_ms"`
	// SpeedupVs1 is the workers=1 row's wall time divided by this row's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// benchSweepScaling times the same conformance sweep — every seed an
// independent whole-fleet run — at worker counts 1, 2, 4 on the shared
// sweep runner. The report is identical at every count (the runner's
// determinism contract); only wall time moves.
func benchSweepScaling(quick bool) []sweepScaleBench {
	seeds := 16
	if quick {
		seeds = 6
	}
	var out []sweepScaleBench
	for _, workers := range []int{1, 2, 4} {
		start := time.Now()
		conformance.SweepOpts(seeds, workers)
		wall := float64(time.Since(start).Microseconds()) / 1e3
		b := sweepScaleBench{Workers: workers, Seeds: seeds, WallMs: wall, SpeedupVs1: 1}
		if len(out) > 0 {
			b.SpeedupVs1 = out[0].WallMs / fmaxf(1e-9, wall)
		}
		out = append(out, b)
	}
	return out
}

// barrierProbe is an always-awake shard runner that performs no simulated
// work, so a per-tick run over it times epoch coordination alone.
type barrierProbe struct{}

func (barrierProbe) Step(sim.Cycle)                    {}
func (barrierProbe) NextEvent(now sim.Cycle) sim.Cycle { return now }

// benchBarrier measures one fork/join epoch round trip — arming, the
// worker wake, the sense-reversing barrier, and the commit scan — by
// running two no-work shard runners for a fixed number of per-tick epochs.
func benchBarrier() float64 {
	const epochs = 200_000
	e := sim.NewParallelEngine()
	e.RegisterShard(barrierProbe{})
	e.RegisterShard(barrierProbe{})
	start := time.Now()
	e.Run(func() bool { return false }, epochs)
	return float64(time.Since(start).Nanoseconds()) / float64(epochs)
}

// jsonResult shadows experiments.Result with a marshalable error field.
type jsonResult struct {
	ID      string           `json:"id"`
	Title   string           `json:"title"`
	Anchor  string           `json:"anchor"`
	Claim   string           `json:"claim"`
	Tables  []*metrics.Table `json:"tables"`
	Finding string           `json:"finding,omitempty"`
	Error   string           `json:"error,omitempty"`
}

func printJSON(results []experiments.Result) {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		jr := jsonResult{ID: r.ID, Title: r.Title, Anchor: r.Anchor,
			Claim: r.Claim, Tables: r.Tables, Finding: r.Finding}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "critique-bench:", err)
		os.Exit(1)
	}
}

func printMarkdown(r experiments.Result) {
	fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
	fmt.Printf("*Paper anchor:* %s\n\n", r.Anchor)
	fmt.Printf("*Paper claim:* %s\n\n", r.Claim)
	if r.Err != nil {
		fmt.Printf("**ERROR:** %v\n\n", r.Err)
		return
	}
	for _, t := range r.Tables {
		fmt.Println("```")
		fmt.Print(t.String())
		fmt.Println("```")
		fmt.Println()
	}
	fmt.Printf("*Measured:* %s\n\n", r.Finding)
}
