// Command critique-load is the serve API's load generator: it replays a
// population of conformance-generator programs — one cold pass, then
// repeat passes — against critique-serve (or a self-hosted in-process
// server) with concurrent client workers, and records p50/p99 latency
// for cold runs and cache hits, throughput, and hit rate into a BENCH
// JSON document (schema v3 extension, BENCH_PR9.json in the repo). By
// default it replays the same traffic a second time against machine
// "direct" — the cycle-free oracle backend — and records that pass's
// percentiles next to the cycle-accurate ones (-direct-pass=false skips).
//
// Usage:
//
//	critique-load -out BENCH_PR9.json            # self-hosted server
//	critique-load -addr http://localhost:8091    # running server
//	critique-load -programs 64 -repeats 9 -concurrency 16 -machine ttda
//	critique-load -check   # exit 1 unless repeat hit rate >= 0.9 and
//	                       # cold p99 >= 10x hit p99
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/serve"
)

// benchSchemaVersion matches critique-bench's BENCH JSON layout family;
// schema v3 adds the serve_load_direct section (the cycle-free oracle
// backend's pass) next to the cycle-accurate serve_load numbers.
const benchSchemaVersion = 3

// benchDoc is the written document.
type benchDoc struct {
	SchemaVersion int               `json:"schema_version"`
	CodeVersion   string            `json:"code_version"`
	GoMaxProcs    int               `json:"gomaxprocs"`
	ServeLoad     *serve.LoadReport `json:"serve_load"`
	// ServeLoadDirect is the same traffic replayed against machine
	// "direct": result-only serving with no cycle model, the p50/p99
	// every cycle-accurate number is read against.
	ServeLoadDirect *serve.LoadReport `json:"serve_load_direct,omitempty"`
}

func main() {
	addr := flag.String("addr", "", "target server URL (empty = self-host an in-process server)")
	programs := flag.Int("programs", 64, "distinct conformance-generator programs")
	repeats := flag.Int("repeats", 9, "replay passes over the program set after the cold pass")
	concurrency := flag.Int("concurrency", 16, "concurrent client workers")
	machine := flag.String("machine", "ttda", "machine the traffic targets")
	config := flag.String("config", "", `machine config attached to every request, as JSON (e.g. '{"pes":16,"shards":4,"epoch_window":16}')`)
	argScale := flag.Int64("arg-scale", 1, "multiply each minid program's entry argument (longer cold simulations)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "self-hosted server's worker slots")
	out := flag.String("out", "", "write the BENCH JSON document to this file")
	check := flag.Bool("check", false, "exit nonzero unless repeat hit rate >= 0.9 and cold p99 >= 10x hit p99")
	directPass := flag.Bool("direct-pass", true, "also replay the same traffic against machine \"direct\" and record its p50/p99")
	flag.Parse()

	var cfg *serve.Config
	if *config != "" {
		cfg = &serve.Config{}
		if err := json.Unmarshal([]byte(*config), cfg); err != nil {
			fmt.Fprintln(os.Stderr, "critique-load: -config:", err)
			os.Exit(1)
		}
	}

	rep, err := serve.RunLoad(serve.LoadOptions{
		URL:         *addr,
		Self:        serve.Options{Workers: *workers, Backlog: *concurrency * 4, Timeout: *timeout},
		Programs:    *programs,
		Repeats:     *repeats,
		Concurrency: *concurrency,
		Machine:     *machine,
		Config:      cfg,
		ArgScale:    *argScale,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "critique-load:", err)
		os.Exit(1)
	}

	fmt.Printf("critique-load: %d requests (%d cold, %d hits, %d coalesced, %d errors) in %.0f ms — %.0f req/s\n",
		rep.Requests, rep.Cold, rep.Hits, rep.Coalesced, rep.Errors, rep.WallMs, rep.ThroughputRPS)
	fmt.Printf("  cold p50/p99 %.3f/%.3f ms, hit p50/p99 %.3f/%.3f ms (cold/hit p99 %.1fx)\n",
		rep.ColdP50Ms, rep.ColdP99Ms, rep.HitP50Ms, rep.HitP99Ms, rep.ColdOverHitP99)
	fmt.Printf("  hit rate %.3f overall, %.3f on repeat traffic\n", rep.HitRate, rep.RepeatHitRate)

	// The direct pass replays the identical program population against the
	// cycle-free oracle backend: same cache, same coalescing, no cycle
	// model. Its cold p50/p99 is what result-only traffic pays.
	var directRep *serve.LoadReport
	if *directPass && *machine != "direct" {
		directRep, err = serve.RunLoad(serve.LoadOptions{
			URL:         *addr,
			Self:        serve.Options{Workers: *workers, Backlog: *concurrency * 4, Timeout: *timeout},
			Programs:    *programs,
			Repeats:     *repeats,
			Concurrency: *concurrency,
			Machine:     "direct",
			ArgScale:    *argScale,
			Timeout:     *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "critique-load: direct pass:", err)
			os.Exit(1)
		}
		fmt.Printf("critique-load [direct]: %d requests (%d errors) — cold p50/p99 %.3f/%.3f ms, hit p50/p99 %.3f/%.3f ms\n",
			directRep.Requests, directRep.Errors, directRep.ColdP50Ms, directRep.ColdP99Ms, directRep.HitP50Ms, directRep.HitP99Ms)
	}

	if *out != "" {
		doc := benchDoc{
			SchemaVersion:   benchSchemaVersion,
			CodeVersion:     buildinfo.CodeVersion(),
			GoMaxProcs:      runtime.GOMAXPROCS(0),
			ServeLoad:       rep,
			ServeLoadDirect: directRep,
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "critique-load:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "critique-load:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "critique-load:", err)
			os.Exit(1)
		}
		fmt.Printf("critique-load: wrote %s\n", *out)
	}

	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "critique-load: %d requests failed\n", rep.Errors)
		os.Exit(1)
	}
	if directRep != nil && directRep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "critique-load: %d direct-pass requests failed\n", directRep.Errors)
		os.Exit(1)
	}
	if *check {
		if rep.RepeatHitRate < 0.9 {
			fmt.Fprintf(os.Stderr, "critique-load: repeat hit rate %.3f < 0.9\n", rep.RepeatHitRate)
			os.Exit(1)
		}
		if rep.ColdOverHitP99 < 10 {
			fmt.Fprintf(os.Stderr, "critique-load: cold p99 only %.1fx hit p99 (< 10x)\n", rep.ColdOverHitP99)
			os.Exit(1)
		}
		fmt.Println("critique-load: check passed")
	}
}
