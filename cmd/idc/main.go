// Command idc compiles MiniID source to a tagged-token dataflow graph and
// prints it — the textual analogue of the paper's Figure 2-2. With -run it
// also executes the program on the reference interpreter.
//
// Usage:
//
//	idc [-run] [-args "1 2 3"] file.id
//	idc -demo            # compile and dump the paper's trapezoid program
//	idc -emit-go file.id # print the program as standalone Go source
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/direct"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/workload"
)

func main() {
	run := flag.Bool("run", false, "execute the program on the reference interpreter")
	argsFlag := flag.String("args", "", "space-separated numeric arguments for -run")
	demo := flag.Bool("demo", false, "use the paper's Figure 2-2 trapezoid program")
	stats := flag.Bool("stats", false, "print opcode composition instead of the full dump")
	out := flag.String("o", "", "write the compiled program as a TTDA object file")
	check := flag.Bool("check", false, "run the static type checker and report diagnostics")
	dot := flag.Bool("dot", false, "print the graph in Graphviz DOT format instead of text")
	emitGo := flag.Bool("emit-go", false, "print the program as standalone Go source (direct-execution oracle)")
	flag.Parse()

	var src string
	switch {
	case *demo:
		src = workload.TrapezoidID
		if *argsFlag == "" {
			*argsFlag = "0.0 1.0 100.0"
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: idc [-run] [-args \"...\"] file.id | idc -demo")
		os.Exit(2)
	}

	if *check {
		f, err := id.Parse(src)
		if err != nil {
			fatal(err)
		}
		diags := id.Check(f)
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		fmt.Println("check: no type errors")
	}
	prog, err := id.Compile(src)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		data, err := prog.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes, %d instructions)\n", *out, len(data), prog.NumInstructions())
		if !*run && !*stats {
			return
		}
	}
	if *emitGo {
		src, err := direct.EmitGo(prog)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(src)
		if !*run {
			return
		}
	}
	switch {
	case *emitGo:
		// the generated source is the whole dump
	case *stats:
		fmt.Printf("program %q: %d blocks, %d instructions\n", prog.Name, len(prog.Blocks), prog.NumInstructions())
		for _, oc := range prog.Stats() {
			fmt.Printf("  %-8s %d\n", oc.Op, oc.N)
		}
	case *dot:
		fmt.Print(prog.Dot())
	default:
		fmt.Print(prog.Dump())
	}

	if !*run {
		return
	}
	args, err := cli.ParseArgs(*argsFlag)
	if err != nil {
		fatal(err)
	}
	runArgs, err := id.EntryArgs(prog, args)
	if err != nil {
		fatal(err)
	}
	it := graph.NewInterp(prog)
	res, err := it.Run(runArgs...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nresult: %v\n", res)
	fmt.Printf("fired %d instructions over %d waves (max parallelism %d)\n",
		it.Fired(), it.Depth(), it.MaxParallelism())
	total, peak := it.DeferredReads()
	if total > 0 {
		fmt.Printf("deferred reads: %d (peak outstanding %d)\n", total, peak)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idc:", err)
	os.Exit(1)
}
