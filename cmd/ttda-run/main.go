// Command ttda-run executes a MiniID program on the cycle-accurate
// tagged-token dataflow machine and prints the machine statistics of
// Figures 2-3/2-4: ALU utilization, waiting-matching occupancy, token
// class mix, and network traffic.
//
// Usage:
//
//	ttda-run [-pes 8] [-latency 2] [-args "0 1 100"] file.id
//	ttda-run -demo trapezoid|matmul|fib|pc|wavefront|mergesort|collatz
//	ttda-run -demo matmul -checkpoint-every 1000 -checkpoint-out m.ckpt
//	ttda-run -demo matmul -resume m.ckpt
//
// A run split across checkpoint/resume is cycle-for-cycle identical to a
// straight run: the checkpoint carries the engine clock, wake queue, and
// every machine structure, so statistics and results match exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/workload"
)

var demos = map[string]struct {
	src  string
	args string
}{
	"trapezoid": {workload.TrapezoidID, "0.0 1.0 100.0"},
	"matmul":    {workload.MatMulID, "6"},
	"fib":       {workload.FibID, "15"},
	"pc":        {workload.ProducerConsumerID, "64"},
	"wavefront": {workload.WavefrontID, "12"},
	"mergesort": {workload.MergeSortID, "16"},
	"collatz":   {workload.CollatzID, "27"},
}

func main() {
	pes := flag.Int("pes", 8, "number of processing elements")
	latency := flag.Uint64("latency", 2, "network latency in cycles")
	argsFlag := flag.String("args", "", "space-separated numeric arguments")
	demo := flag.String("demo", "", "run a built-in workload: trapezoid, matmul, fib, pc, wavefront, mergesort, collatz")
	limit := flag.Uint64("limit", 1_000_000_000, "cycle limit")
	perPE := flag.Bool("per-pe", false, "print per-PE statistics")
	traceN := flag.Int("trace", 0, "record and print the last N machine events")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "write a checkpoint to -checkpoint-out every N cycles while running (0 = never)")
	ckptOut := flag.String("checkpoint-out", "ttda.ckpt", "checkpoint file for -checkpoint-every")
	resume := flag.String("resume", "", "resume from a checkpoint file (program, -pes, and -latency must match the saving run)")
	flag.Parse()

	var src string
	var obj *graph.Program
	switch {
	case *demo != "":
		d, ok := demos[*demo]
		if !ok {
			fatal(fmt.Errorf("unknown demo %q", *demo))
		}
		src = d.src
		if *argsFlag == "" {
			*argsFlag = d.args
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		// TTDA object files (from idc -o) load directly; anything else is
		// MiniID source.
		if len(data) >= 4 && string(data[:4]) == "TTDA" {
			obj, err = graph.UnmarshalProgram(data)
			if err != nil {
				fatal(err)
			}
		} else {
			src = string(data)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ttda-run [-pes N] [-latency L] [-args \"...\"] file.id | ttda-run -demo NAME")
		os.Exit(2)
	}

	prog := obj
	if prog == nil {
		var err error
		prog, err = id.Compile(src)
		if err != nil {
			fatal(err)
		}
	}
	args, err := cli.ParseArgs(*argsFlag)
	if err != nil {
		fatal(err)
	}
	runArgs, err := id.EntryArgs(prog, args)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{PEs: *pes, NetLatency: sim.Cycle(*latency)}
	var tracer *core.Tracer
	if *traceN > 0 {
		tracer = core.NewTracer(*traceN)
		cfg.Trace = tracer
	}
	m := core.NewMachine(cfg, prog)
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			fatal(err)
		}
		if err := sim.Restore(m, data); err != nil {
			fatal(fmt.Errorf("resume %s: %v", *resume, err))
		}
		fmt.Printf("resumed from %s at cycle %d\n", *resume, m.Engine().Now())
	}
	res, err := runWithCheckpoints(m, sim.Cycle(*limit), *ckptEvery, *ckptOut, runArgs)
	if tracer != nil {
		tracer.Dump(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program %q on %d PEs (network latency %d)\n", prog.Name, *pes, *latency)
	fmt.Printf("result: %v\n\n", res)
	fmt.Print(m.Summarize())
	ns := m.Network().Stats()
	fmt.Printf("network           %d delivered, mean latency %.1f cycles\n",
		ns.Delivered.Value(), ns.MeanLatency())

	if *perPE {
		fmt.Println("\nper-PE:")
		for i, ps := range m.PEStats() {
			fmt.Printf("  PE%-3d fired=%-8d util=%.3f match peak=%d\n",
				i, ps.Fired.Value(), ps.ALU.Fraction(), ps.MatchStoreOccupancy.Max())
		}
	}
}

// runWithCheckpoints drives the machine to completion, pausing every
// `every` cycles to write a checkpoint (atomically irrelevant here: the
// file is a debugging/restart artifact, and a torn write is rejected by
// Restore's framing). every == 0 is a plain straight-through run. The
// split run is cycle-for-cycle identical to a straight one: pausing and
// checkpointing never perturb machine state.
func runWithCheckpoints(m *core.Machine, limit sim.Cycle, every uint64, out string, args []token.Value) ([]token.Value, error) {
	if every == 0 {
		return m.Run(limit, args...)
	}
	wrote := 0
	for {
		res, err := m.Run(sim.Cycle(every), args...)
		if err == nil {
			if wrote > 0 {
				fmt.Printf("wrote %d checkpoints to %s\n", wrote, out)
			}
			return res, nil
		}
		if !strings.Contains(err.Error(), "did not finish") {
			return nil, err
		}
		if m.Engine().Now() >= limit {
			return nil, fmt.Errorf("program did not finish within %d cycles", limit)
		}
		if werr := os.WriteFile(out, sim.Checkpoint(m), 0o644); werr != nil {
			return nil, werr
		}
		wrote++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ttda-run:", err)
	os.Exit(1)
}
