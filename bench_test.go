// Package repro's benchmark harness: one benchmark per experiment (the
// paper's figures and quantitative claims, E1-E12 — see DESIGN.md for the
// index), plus throughput micro-benchmarks for each substrate. Run with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the reduced (Quick) sweeps and report
// their key figure as a custom metric; the full sweeps are printed by
// cmd/critique-bench and recorded in EXPERIMENTS.md.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/emulator"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

var quick = experiments.Options{Quick: true}

// runExperiment drives one experiment per iteration and fails the bench if
// the experiment errors.
func runExperiment(b *testing.B, f func(experiments.Options) experiments.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := f(quick)
		if r.Err != nil {
			b.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
}

func BenchmarkE1LatencyTolerance(b *testing.B) { runExperiment(b, experiments.E1LatencyTolerance) }
func BenchmarkE2Contexts(b *testing.B)         { runExperiment(b, experiments.E2ContextCounts) }
func BenchmarkE3Coherence(b *testing.B)        { runExperiment(b, experiments.E3CacheCoherence) }
func BenchmarkE4ReadBeforeWrite(b *testing.B)  { runExperiment(b, experiments.E4ReadBeforeWrite) }
func BenchmarkE5Trapezoid(b *testing.B)        { runExperiment(b, experiments.E5Trapezoid) }
func BenchmarkE6Pipeline(b *testing.B)         { runExperiment(b, experiments.E6PipelineAnatomy) }
func BenchmarkE7Cmmp(b *testing.B)             { runExperiment(b, experiments.E7Cmmp) }
func BenchmarkE8Cmstar(b *testing.B)           { runExperiment(b, experiments.E8Cmstar) }
func BenchmarkE9FetchAndAdd(b *testing.B)      { runExperiment(b, experiments.E9FetchAndAdd) }
func BenchmarkE10Connection(b *testing.B)      { runExperiment(b, experiments.E10ConnectionMachine) }
func BenchmarkE11Emulator(b *testing.B)        { runExperiment(b, experiments.E11Emulator) }
func BenchmarkE12VLIW(b *testing.B)            { runExperiment(b, experiments.E12VLIW) }

// --- substrate micro-benchmarks ---

// BenchmarkCompiler measures MiniID compilation throughput on the paper's
// trapezoid program.
func BenchmarkCompiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := id.Compile(workload.TrapezoidID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures reference-interpreter instruction
// throughput on sum(1..1000).
func BenchmarkInterpreter(b *testing.B) {
	prog, err := id.Compile(workload.SumLoopID)
	if err != nil {
		b.Fatal(err)
	}
	var fired uint64
	for i := 0; i < b.N; i++ {
		it := graph.NewInterp(prog)
		if _, err := it.Run(token.Int(1000)); err != nil {
			b.Fatal(err)
		}
		fired = it.Fired()
	}
	b.ReportMetric(float64(fired)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkDirectVsInterp runs the direct-execution oracle backend and
// the interpreted TTDA machine (8 PEs) on the same workload programs —
// the per-workload pair behind BENCH's direct_speedup_vs_interpreted
// ratio. Loop-heavy shapes (sumloop) collapse their circulation
// firings into native Go loops; recursion-heavy shapes (fib) only shed
// the cycle model.
func BenchmarkDirectVsInterp(b *testing.B) {
	cases := []struct {
		name string
		src  string
		arg  int64
	}{
		{"sumloop", workload.SumLoopID, 20000},
		{"matmul", workload.MatMulID, 4},
		{"fib", workload.FibID, 14},
	}
	for _, c := range cases {
		prog, err := id.Compile(c.src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/direct", func(b *testing.B) {
			var fired uint64
			for i := 0; i < b.N; i++ {
				x := direct.New(prog)
				if _, err := x.Run(token.Int(c.arg)); err != nil {
					b.Fatal(err)
				}
				fired = x.Fired()
			}
			b.ReportMetric(float64(fired)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mfirings/s")
		})
		b.Run(c.name+"/ttda", func(b *testing.B) {
			var fired uint64
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(core.Config{PEs: 8}, prog)
				if _, err := m.Run(1_000_000_000, token.Int(c.arg)); err != nil {
					b.Fatal(err)
				}
				fired = m.Summarize().Fired
			}
			b.ReportMetric(float64(fired)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mfirings/s")
		})
	}
}

// BenchmarkTTDAMachine measures the cycle-accurate machine's simulation
// speed (simulated cycles per wall second) on an 8-PE matmul.
func BenchmarkTTDAMachine(b *testing.B) {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(core.Config{PEs: 8}, prog)
		if _, err := m.Run(1_000_000_000, token.Int(4)); err != nil {
			b.Fatal(err)
		}
		cycles = m.Summarize().Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}

// BenchmarkTTDAMachineScaling reports simulated run length as the machine
// grows — the experiment infrastructure's own scaling behaviour.
func BenchmarkTTDAMachineScaling(b *testing.B) {
	prog, err := id.Compile(workload.FibID)
	if err != nil {
		b.Fatal(err)
	}
	for _, pes := range []int{1, 4, 16} {
		b.Run(benchName("pes", pes), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(core.Config{PEs: pes}, prog)
				if _, err := m.Run(1_000_000_000, token.Int(12)); err != nil {
					b.Fatal(err)
				}
				cycles = m.Summarize().Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkEmulator measures the emulation facility's instruction
// throughput (the Figure 3-1 speed argument).
func BenchmarkEmulator(b *testing.B) {
	prog, err := id.Compile(workload.FibID)
	if err != nil {
		b.Fatal(err)
	}
	var fired uint64
	for i := 0; i < b.N; i++ {
		f := emulator.New(emulator.Config{Dim: 5}, prog)
		if _, err := f.Run(token.Int(14)); err != nil {
			b.Fatal(err)
		}
		fired = f.Fired.Load()
	}
	b.ReportMetric(float64(fired)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkA1Optimizer(b *testing.B)     { runExperiment(b, experiments.A1Optimizer) }
func BenchmarkA2MatchCapacity(b *testing.B) { runExperiment(b, experiments.A2MatchCapacity) }
func BenchmarkA3Bandwidth(b *testing.B)     { runExperiment(b, experiments.A3PipelineBandwidth) }
func BenchmarkA4Topology(b *testing.B)      { runExperiment(b, experiments.A4Topology) }

func BenchmarkE13Grail(b *testing.B) { runExperiment(b, experiments.E13ParallelismGrail) }

func BenchmarkA5OpTiming(b *testing.B) { runExperiment(b, experiments.A5OpTiming) }
