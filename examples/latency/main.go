// Latency tolerance — the paper's Issue 1, live. The same streaming
// computation runs on three architectures while the memory/network latency
// sweeps upward, as it must in any machine that grows:
//
//   - a blocking von Neumann core (one outstanding request),
//
//   - a 16-context multithreaded core (HEP-style switch-on-load),
//
//   - the tagged-token dataflow machine (unbounded overlapped requests).
//
//     go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/vn"
	"repro/internal/workload"
)

func vnUtil(latency sim.Cycle, contexts int) float64 {
	prog, err := vn.Assemble(workload.MemLoopASM)
	if err != nil {
		log.Fatal(err)
	}
	mem := vn.NewLatencyMemory(latency)
	c := vn.NewCore(prog, mem, contexts)
	for i := 0; i < contexts; i++ {
		c.Context(i).SetReg(1, vn.Word(1000+1000*i))
		c.Context(i).SetReg(4, 100)
	}
	eng := sim.NewEngine()
	eng.Register(mem)
	eng.Register(c)
	if _, ok := eng.Run(c.Halted, 10_000_000); !ok {
		log.Fatal("vN run did not halt")
	}
	return c.Stats().Utilization()
}

func main() {
	// The TTDA side runs fib(15): a tree of parallel contexts, the
	// "sufficiently parallel program" the paper's claim depends on.
	prog, err := id.Compile(workload.FibID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("utilization / run time as memory latency grows (Issue 1)")
	fmt.Println()
	fmt.Printf("%8s  %14s  %14s  %18s\n", "latency", "vN blocking", "vN 16-context", "TTDA (4 PEs)")
	var ttdaBase uint64
	for _, l := range []sim.Cycle{1, 5, 10, 25, 50, 100, 200} {
		m := core.NewMachine(core.Config{PEs: 4, NetLatency: l}, prog)
		res, err := m.Run(500_000_000, token.Int(15))
		if err != nil {
			log.Fatal(err)
		}
		if res[0].I != 610 {
			log.Fatalf("TTDA computed %s", res[0])
		}
		cycles := m.Summarize().Cycles
		if ttdaBase == 0 {
			ttdaBase = cycles
		}
		fmt.Printf("%8d  %13.1f%%  %13.1f%%  %9d cycles (%.2fx)\n",
			l, 100*vnUtil(l, 1), 100*vnUtil(l, 16), cycles, float64(cycles)/float64(ttdaBase))
	}
	fmt.Println()
	fmt.Println("the blocking processor collapses; 16 contexts hold out until the")
	fmt.Println("latency exceeds what they can cover; the dataflow machine keeps")
	fmt.Println("issuing overlapped requests and degrades only gently.")
}
