// Producer/consumer under three synchronization disciplines — the paper's
// Issue 2. One loop fills an array while another sums it; the only
// difference between the three programs is how the consumer waits:
//
//   - whole-array barrier: the consumer starts after the producer finishes;
//
//   - per-element (I-structures): reads that arrive early are deferred at
//     the storage and satisfied by the matching writes — full overlap with
//     no software synchronization at all;
//
//   - HEP-style busy-waiting: shown at the controller level, where polling
//     wastes operations that deferred lists never issue.
//
//     go run ./examples/producerconsumer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/istructure"
	"repro/internal/sim"
	"repro/internal/token"
)

const n = 128

const barrierSrc = `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i * 2 + 1;
           new z <- z
         return 0);
    b = if p == 0 then a else a;   # control transfer: wait for ALL writes
    (initial s <- 0
     for i from 0 to n - 1 do
       new s <- s + b[i]
     return s) };
`

const elementSrc = `
def main(n) =
  { a = array(n);
    p = (initial z <- 0
         for i from 0 to n - 1 do
           a[i] <- i * 2 + 1;
           new z <- z
         return 0);
    s = (initial s <- 0               # starts immediately: presence bits
         for i from 0 to n - 1 do     # synchronize each element
           new s <- s + a[i]
         return s);
    s + p * 0 };
`

func run(name, src string) uint64 {
	prog, err := id.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMachine(core.Config{PEs: 8}, prog)
	res, err := m.Run(50_000_000, token.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	if res[0].I != n*n {
		log.Fatalf("%s computed %s, want %d", name, res[0], n*n)
	}
	s := m.Summarize()
	fmt.Printf("%-22s %6d cycles   %3d reads deferred at the storage\n", name, s.Cycles, s.DeferredReads)
	return s.Cycles
}

func main() {
	fmt.Printf("filling and summing a %d-element I-structure on an 8-PE TTDA\n\n", n)
	b := run("whole-array barrier", barrierSrc)
	e := run("per-element sync", elementSrc)
	fmt.Printf("\nper-element synchronization is %.2fx faster: production and\n", float64(b)/float64(e))
	fmt.Println("consumption overlap with zero software synchronization (Issue 2).")

	// The controller-level contrast with busy-waiting (paper footnote 2).
	fmt.Println("\nstorage-controller view (producer writes one element every 8 cycles):")
	im := istructure.New(istructure.Config{Size: n, Respond: func(istructure.Response) {}})
	var hm *istructure.HEPModule
	hm = istructure.NewHEP(0, n, 1, func(r istructure.HEPResponse) {
		if !r.OK {
			hm.Enqueue(istructure.Request{Op: istructure.OpRead, Addr: r.Addr, ReplyTo: r.ReplyTo})
		}
	})
	for i := uint32(0); i < n; i++ {
		im.Enqueue(istructure.Request{Op: istructure.OpRead, Addr: i, ReplyTo: int(i)})
		hm.Enqueue(istructure.Request{Op: istructure.OpRead, Addr: i, ReplyTo: int(i)})
	}
	eng := sim.NewEngine()
	// The paced producer is not event-aware, so the engine steps every
	// cycle: the open-loop write schedule lands exactly as written.
	eng.Register(sim.ComponentFunc(func(now sim.Cycle) {
		c := int(now)
		if c%8 == 0 && c/8 < n {
			w := istructure.Request{Op: istructure.OpWrite, Addr: uint32(c / 8), Value: 1}
			im.Enqueue(w)
			hm.Enqueue(w)
		}
	}))
	eng.Register(im)
	eng.Register(hm)
	eng.Run(func() bool { return false }, n*8+n*10)
	iOps := im.Stats().Reads.Value() + im.Stats().Writes.Value()
	hOps := hm.Stats().Reads.Value() + hm.Stats().Writes.Value()
	fmt.Printf("  I-structure deferred lists: %4d controller operations\n", iOps)
	fmt.Printf("  HEP-style busy-waiting:     %4d controller operations (%d wasted retries)\n",
		hOps, hm.Stats().Retries.Value())
}
