// Quickstart: compile the paper's Figure 2-2 program (trapezoidal-rule
// integration written in MiniID) and run it three ways — on the reference
// interpreter, on the cycle-accurate tagged-token machine, and on the
// goroutine-based emulation facility — then check that all three agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/emulator"
	"repro/internal/graph"
	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

func main() {
	// 1. Compile ID source to a tagged-token dataflow graph.
	prog, err := id.Compile(workload.TrapezoidID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d code blocks, %d instructions\n", len(prog.Blocks), prog.NumInstructions())
	fmt.Printf("loop operators: %d L, %d D, %d D-1, %d L-1 (Figure 2-2's context machinery)\n\n",
		prog.CountOp(graph.OpL), prog.CountOp(graph.OpD), prog.CountOp(graph.OpDInv), prog.CountOp(graph.OpLInv))

	// Integrate f(x)=x^2 over [0,1] with 100 intervals; exact answer 1/3.
	args := []token.Value{token.Float(0), token.Float(1), token.Float(100)}

	// 2. Reference interpreter: idealized dataflow, gives the answer plus
	// the program's ideal parallelism profile.
	it := graph.NewInterp(prog)
	ires, err := it.Run(args...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter:  %v  (critical path %d waves, max parallelism %d)\n",
		ires[0], it.Depth(), it.MaxParallelism())

	// 3. Cycle-accurate tagged-token machine, 4 PEs.
	m := core.NewMachine(core.Config{PEs: 4}, prog)
	mres, err := m.Run(10_000_000, args...)
	if err != nil {
		log.Fatal(err)
	}
	s := m.Summarize()
	fmt.Printf("TTDA (4 PEs): %v  (%d cycles, ALU utilization %.2f)\n", mres[0], s.Cycles, s.ALUUtilization)

	// 4. Emulation facility: 32 goroutine PEs on a 5-cube.
	f := emulator.New(emulator.Config{Dim: 5}, prog)
	fres, err := f.Run(args...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulator:     %v  (%d messages over the cube)\n", fres[0], f.Messages.Load())

	if !ires[0].Equal(mres[0]) || !ires[0].Equal(fres[0]) {
		log.Fatal("substrates disagree!")
	}
	fmt.Println("\nall three substrates agree ✓")
}
