// A tour of Section 1.2: run each surveyed von Neumann machine on the
// workload that exposes its weakness, and print the paper's verdicts with
// measured numbers attached.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"

	"repro/internal/machines/cmmp"
	"repro/internal/machines/cmstar"
	"repro/internal/machines/connection"
	"repro/internal/machines/ultra"
	"repro/internal/machines/vliw"
	"repro/internal/sim"
	"repro/internal/vn"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Section 1.2, measured: each machine on the workload that bites it")
	fmt.Println()
	cmmpDemo()
	cmstarDemo()
	ultraDemo()
	vliwDemo()
	connectionDemo()
}

// C.mmp (1.2.1): a TAS-semaphore counter serializes; adding processors
// adds no throughput.
func cmmpDemo() {
	prog, err := vn.Assemble(workload.CounterLockASM)
	if err != nil {
		log.Fatal(err)
	}
	timeFor := func(p int) sim.Cycle {
		m := cmmp.New(cmmp.Config{Processors: p, Banks: p}, prog, 1)
		for q := 0; q < p; q++ {
			m.Core(q).Context(0).SetReg(5, 25)
		}
		cycles, err := m.Run(10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if got := m.Peek(1); got != vn.Word(25*p) {
			log.Fatalf("counter = %d", got)
		}
		return cycles
	}
	t2, t16 := timeFor(2), timeFor(16)
	fmt.Printf("C.mmp      crossbar+semaphores: 2 procs %5d cycles, 16 procs %5d — %0.1fx the work, %.1fx the time (locks serialize)\n",
		t2, t16, 8.0, float64(t16)/float64(t2))
}

// Cm* (1.2.2): the same reference stream, one cluster away, triples in
// cost because the LSI-11 blocks.
func cmstarDemo() {
	prog, err := vn.Assemble(workload.MemLoopASM)
	if err != nil {
		log.Fatal(err)
	}
	runAt := func(base uint32) float64 {
		m := cmstar.New(cmstar.Config{Clusters: 4, CoresPerCluster: 1, ClusterWords: 4096}, prog)
		for a := uint32(0); a < 4*4096; a++ {
			m.Poke(a, 1)
		}
		for i := 1; i < m.NumCores(); i++ {
			m.CoreAt(i).Context(0).SetPC(len(prog.Instrs) - 1)
		}
		h := m.Core(0, 0).Context(0)
		h.SetReg(1, vn.Word(base))
		h.SetReg(4, 50)
		if _, err := m.Run(10_000_000); err != nil {
			log.Fatal(err)
		}
		return m.Core(0, 0).Stats().Utilization()
	}
	fmt.Printf("Cm*        blocking remote refs: utilization %.2f on local data, %.2f one cluster away, %.2f three away\n",
		runAt(0), runAt(4096), runAt(3*4096))
}

// Ultracomputer (1.2.3): combining flattens the hot-spot burst.
func ultraDemo() {
	prog, err := vn.Assemble(workload.HotspotASM)
	if err != nil {
		log.Fatal(err)
	}
	run := func(combining bool) (sim.Cycle, uint64) {
		m := ultra.New(ultra.Config{LogProcessors: 5, Combining: combining}, prog)
		for p := 0; p < m.NumProcessors(); p++ {
			m.Core(p).Context(0).SetReg(4, vn.Word(1000+p))
		}
		cycles, err := m.Run(10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		return cycles, m.BankServed(0)
	}
	pc, ph := run(false)
	cc, ch := run(true)
	fmt.Printf("Ultra      32-way FETCH-AND-ADD burst: plain %d cycles (%d hot-bank requests), combining %d cycles (%d) — the adds moved into the switches\n",
		pc, ph, cc, ch)
}

// VLIW (1.2.4): miss-rate sensitivity of a lockstep schedule.
func vliwDemo() {
	sched := vliw.SyntheticSchedule(2000, 4, 2, 4)
	clean := vliw.Run(sched, vliw.Config{HitLatency: 3, MissLatency: 100, MissRate: 0, Seed: 1})
	dirty := vliw.Run(sched, vliw.Config{HitLatency: 3, MissLatency: 100, MissRate: 0.10, Seed: 1})
	fmt.Printf("VLIW       static schedule: %.1f ops/cycle when memory behaves, %.2f at a 10%% miss rate (everything stalls together)\n",
		clean.OpsPerCycle(), dirty.OpsPerCycle())
}

// Connection Machine (1.2.5): communication dominates 1-bit computation.
func connectionDemo() {
	m := connection.New(connection.Config{LogPEs: 8}, 4)
	n := m.NumPEs()
	rng := sim.NewRNG(7)
	for pe := 0; pe < n; pe++ {
		m.Mem(pe)[0] = int64(pe)
		m.Mem(pe)[1] = int64(n)
	}
	for round := 0; round < 200; round++ {
		var msgs []connection.Message
		for pe := 0; pe < n; pe++ {
			msgs = append(msgs,
				connection.Message{From: pe, To: (pe + 1) % n, Value: m.Mem(pe)[0]},
				connection.Message{From: pe, To: rng.Intn(n), Value: m.Mem(pe)[0]})
		}
		changed := false
		m.Route(msgs, func(to int, v int64) {
			if v < m.Mem(to)[1] {
				m.Mem(to)[1] = v
			}
		})
		m.Compute(func(pe int, mem []int64) {
			if mem[1] < mem[0] {
				mem[0] = mem[1]
				changed = true
			}
			mem[1] = int64(n)
		})
		if !changed {
			break
		}
	}
	fmt.Printf("CM         label propagation on 256 cells: %.0f%% of sequencer time spent routing (the paper guessed \"90%%? 99%%?\")\n",
		100*m.CommFraction())
}
