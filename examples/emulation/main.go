// The Section 3 emulation facility in action: a 32-node hypercube of
// goroutine PEs runs a compiled dataflow program; we then injure the cube
// (dead links), let table-based routing steer around the damage, and
// finally split the facility into two independent sub-machines — the three
// capabilities the paper designed the testbed around.
//
//	go run ./examples/emulation
package main

import (
	"fmt"
	"log"

	"repro/internal/emulator"
	"repro/internal/id"
	"repro/internal/token"
	"repro/internal/workload"
)

func main() {
	prog, err := id.Compile(workload.MatMulID)
	if err != nil {
		log.Fatal(err)
	}
	const n = 8
	want := workload.MatMulChecksum(n)

	// Healthy 32-node cube.
	f := emulator.New(emulator.Config{Dim: 5}, prog)
	res, err := f.Run(token.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matmul(%d) on a healthy 5-cube:  %v (want %d)\n", n, res[0], want)
	fmt.Printf("  %d messages, %d forwarded hops, %d instructions fired\n",
		f.Messages.Load(), f.Hops.Load(), f.Fired.Load())

	busy := 0
	for i := 0; i < f.NumNodes(); i++ {
		if f.NodeProcessed(i) > 0 {
			busy++
		}
	}
	fmt.Printf("  %d of %d PE+switch modules did work\n\n", busy, f.NumNodes())

	// Fault injection: kill four links; BFS re-routing uses the cube's
	// redundancy ("fault recovery under the control of a microcode task").
	g := emulator.New(emulator.Config{Dim: 5}, prog)
	for _, fault := range [][2]int{{0, 0}, {7, 2}, {13, 1}, {22, 4}} {
		g.KillLink(fault[0], fault[1])
	}
	res, err = g.Run(token.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same program with 4 dead links: %v — answer unchanged\n", res[0])
	fmt.Printf("  %d forwarded hops (%+d vs healthy: the re-route detours)\n\n",
		g.Hops.Load(), int64(g.Hops.Load())-int64(f.Hops.Load()))

	// Static partitioning: two independent 16-node machines.
	sum, err := id.Compile(workload.SumLoopID)
	if err != nil {
		log.Fatal(err)
	}
	part := make([]int, 32)
	for i := range part {
		part[i] = i >> 4
	}
	for pid, arg := range []int64{1000, 2000} {
		pf := emulator.New(emulator.Config{Dim: 5}, sum)
		pf.Partition(part)
		pres, err := pf.RunPartition(pid, token.Int(arg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partition %d computed sum(1..%d) = %v on its own 16 nodes\n", pid, arg, pres[0])
	}
}
